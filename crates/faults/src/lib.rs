//! Deterministic fault injection for the Poseidon datapath model.
//!
//! The paper's datapath (operator pool, 512-lane cores, scratchpad, 32 HBM
//! channels) is modeled in this workspace as pure-Rust functional cores. A
//! production service built on that stack has to survive corrupted buffers
//! and flaky workers, so the integrity layer (RRNS guard limbs, FNV
//! checksums, retry/escalation — see `he_rns::integrity` and
//! `he_ckks::integrity`) needs something to *catch*. This crate is that
//! something: a seeded, fully deterministic injector that corrupts residue
//! words at named hook sites sprinkled through the stack.
//!
//! Design constraints:
//!
//! * **Deterministic.** A [`FaultPlan`] carries a seed; the corrupted word
//!   index, bit position, and payload derive from `splitmix64(seed, hit)`.
//!   Re-arming the same plan reproduces the same corruption sequence
//!   exactly, so every detection test is replayable.
//! * **No-op when disarmed.** The hot-path check is one relaxed atomic
//!   load; consumer crates additionally gate every hook call site behind
//!   their own `faults` cargo feature, so a build without the feature
//!   compiles the hooks away entirely (mirroring the `telemetry` gate) and
//!   stays bit-identical to `main`.
//! * **Dependency-free.** `std`-only, like the rest of the workspace.
//!
//! Hook sites (see [`FaultSite`]) map to the paper's hardware structures:
//! RNS residue vectors (register files / scratchpad lines), NTT twiddle
//! tables (BRAM), the eval-form key-switch key cache (HBM-resident keys),
//! `poseidon-par` scratch buffers (on-chip scratchpad), and the simulator's
//! HBM channel model (memory-side corruption).
//!
//! # Examples
//!
//! ```
//! use poseidon_faults::{arm, disarm, fired, tamper, FaultKind, FaultPlan, FaultSite};
//!
//! let _lock = poseidon_faults::test_lock();
//! arm(FaultPlan::transient(FaultSite::RnsResidue, FaultKind::BitFlip, 42));
//! let mut buf = vec![7u64; 16];
//! assert!(tamper(FaultSite::RnsResidue, &mut buf)); // fires once…
//! assert!(!tamper(FaultSite::RnsResidue, &mut buf)); // …then never again
//! assert_eq!(fired(), 1);
//! disarm();
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Where in the modeled datapath a fault lands. Each variant corresponds
/// to one family of hook call sites in the consumer crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `RnsPoly` residue vectors at NTT entry (`he-rns`): register-file /
    /// scratchpad-line corruption of live ciphertext limbs.
    RnsResidue,
    /// NTT working vectors at transform entry (`he-ntt`): models a
    /// corrupted twiddle BRAM word poisoning the butterfly network.
    NttTwiddle,
    /// The eval-form key-switch key cache read path (`he-ckks`): models a
    /// corrupted HBM-resident key digit.
    KeyCache,
    /// `poseidon-par` scratch-pool buffers at hand-out: models stale or
    /// flipped scratchpad contents.
    ParScratch,
    /// The simulator's HBM channel model (`poseidon-sim`): corrupted beats
    /// on one channel of a striped transfer.
    HbmChannel,
    /// Serialized frames at wire decode entry (`poseidon-wire`): models
    /// corruption on the host↔accelerator link or in a network buffer —
    /// the decoder's checksum must catch every flip.
    WireFrame,
    /// Frame bytes arriving off a serving socket (`poseidon-serve`):
    /// models receive-path corruption, a peer hanging up mid-frame
    /// ([`FaultKind::Truncate`]), or the connection dropping outright.
    SocketRead,
    /// Frame bytes leaving on a serving socket: models transmit-path
    /// corruption or a write that fails because the peer vanished.
    SocketWrite,
    /// A socket endpoint that stops moving bytes for a while
    /// ([`FaultKind::Stall`]): the peer's timeout discipline must bound
    /// the damage.
    SocketStall,
    /// A dispatcher shard worker (`poseidon-serve`): the thread panics
    /// ([`FaultKind::Panic`]) or wedges ([`FaultKind::Stall`]) and the
    /// watchdog must contain, requeue, and respawn.
    ShardWorker,
}

impl FaultSite {
    /// Every site, in hook order.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::RnsResidue,
        FaultSite::NttTwiddle,
        FaultSite::KeyCache,
        FaultSite::ParScratch,
        FaultSite::HbmChannel,
        FaultSite::WireFrame,
        FaultSite::SocketRead,
        FaultSite::SocketWrite,
        FaultSite::SocketStall,
        FaultSite::ShardWorker,
    ];

    /// Stable lower-case name (used by the `tables faults` report).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::RnsResidue => "rns_residue",
            FaultSite::NttTwiddle => "ntt_twiddle",
            FaultSite::KeyCache => "key_cache",
            FaultSite::ParScratch => "par_scratch",
            FaultSite::HbmChannel => "hbm_channel",
            FaultSite::WireFrame => "wire_frame",
            FaultSite::SocketRead => "socket_read",
            FaultSite::SocketWrite => "socket_write",
            FaultSite::SocketStall => "socket_stall",
            FaultSite::ShardWorker => "shard_worker",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::RnsResidue => 0,
            FaultSite::NttTwiddle => 1,
            FaultSite::KeyCache => 2,
            FaultSite::ParScratch => 3,
            FaultSite::HbmChannel => 4,
            FaultSite::WireFrame => 5,
            FaultSite::SocketRead => 6,
            FaultSite::SocketWrite => 7,
            FaultSite::SocketStall => 8,
            FaultSite::ShardWorker => 9,
        }
    }
}

/// What corruption a firing hook applies to the chosen word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit (position derived from the seed, confined to
    /// [`FaultPlan::bit_width`] so the word stays in-range for the modeled
    /// datapath width).
    BitFlip,
    /// Flip two distinct bits of the same word.
    DoubleBitFlip,
    /// Force the word to a fixed value (stuck-at pattern).
    StuckAt(u64),
    /// Zero a run of `len` words starting at the chosen index (clamped to
    /// the buffer end).
    ZeroRange(usize),
    /// Deliver only a seeded prefix of the buffer, then behave as a peer
    /// that vanished mid-frame. Chaos-only: fires through [`disrupt`],
    /// never through the corruption hooks.
    Truncate,
    /// Stop moving for this many milliseconds (a wedged socket or worker).
    /// Chaos-only: fires through [`disrupt`].
    Stall(u64),
    /// Drop the connection outright. Chaos-only: fires through
    /// [`disrupt`].
    Disconnect,
    /// Panic the current thread (a crashed shard worker). Chaos-only:
    /// fires through [`disrupt`].
    Panic,
}

impl FaultKind {
    /// Control-flow kinds model a disruption (cut, stall, crash) rather
    /// than data corruption; they fire only through [`disrupt`] and are
    /// inert in [`tamper`]/[`tamper_bytes`].
    fn is_control(self) -> bool {
        matches!(
            self,
            FaultKind::Truncate | FaultKind::Stall(_) | FaultKind::Disconnect | FaultKind::Panic
        )
    }
}

/// Whether a plan fires once or on every matching hook hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// Fire exactly once, then fall silent (a transient upset — SEU).
    Transient,
    /// Fire on every matching hit (a stuck datapath element).
    Persistent,
}

/// A complete, deterministic description of one injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hook family to target.
    pub site: FaultSite,
    /// Corruption applied on fire.
    pub kind: FaultKind,
    /// One-shot or every-hit.
    pub persistence: Persistence,
    /// Number of matching hits to let pass before the first fire (selects
    /// *which* buffer in a pipeline gets hit — deterministically).
    pub skip: u64,
    /// Seed for the word/bit/payload choices.
    pub seed: u64,
    /// Bit width of the modeled datapath word: flips land in bits
    /// `0..bit_width`. Residues are < 2^31 here, so the default 28 keeps
    /// corrupted words inside the arithmetic range a real RNS lane holds
    /// (flipping bit 63 of a software u64 would model a fault in storage
    /// the hardware doesn't have).
    pub bit_width: u32,
}

impl FaultPlan {
    /// A one-shot plan with default skip 0 and bit width 28.
    pub fn transient(site: FaultSite, kind: FaultKind, seed: u64) -> Self {
        Self {
            site,
            kind,
            persistence: Persistence::Transient,
            skip: 0,
            seed,
            bit_width: 28,
        }
    }

    /// An every-hit plan with default skip 0 and bit width 28.
    pub fn persistent(site: FaultSite, kind: FaultKind, seed: u64) -> Self {
        Self {
            persistence: Persistence::Persistent,
            ..Self::transient(site, kind, seed)
        }
    }

    /// Lets the first `skip` matching hits pass untouched.
    pub fn after(mut self, skip: u64) -> Self {
        self.skip = skip;
        self
    }

    /// Overrides the modeled datapath word width.
    pub fn width(mut self, bits: u32) -> Self {
        self.bit_width = bits.clamp(1, 63);
        self
    }
}

#[derive(Debug)]
struct Armed {
    plan: FaultPlan,
    /// Matching hook hits seen since arming.
    hits: u64,
    /// Fires applied since arming.
    fired: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static FIRED: AtomicU64 = AtomicU64::new(0);
static SITE_HITS: [AtomicU64; 10] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn state() -> &'static Mutex<Option<Armed>> {
    static S: OnceLock<Mutex<Option<Armed>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

/// SplitMix64 — the standard 64-bit mixer; deterministic and
/// dependency-free. Public so tests can predict injector choices.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Arms the global injector with `plan`, resetting hit/fire counters.
/// Any previously armed plan is replaced.
pub fn arm(plan: FaultPlan) {
    let mut s = state().lock().expect("fault injector poisoned");
    *s = Some(Armed {
        plan,
        hits: 0,
        fired: 0,
    });
    FIRED.store(0, Ordering::Relaxed);
    for h in &SITE_HITS {
        h.store(0, Ordering::Relaxed);
    }
    ACTIVE.store(true, Ordering::Release);
}

/// Disarms the injector. Hooks return to the single-atomic-load fast path.
pub fn disarm() {
    ACTIVE.store(false, Ordering::Release);
    let mut s = state().lock().expect("fault injector poisoned");
    *s = None;
}

/// Whether a plan is currently armed.
pub fn armed() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Total fires since the last [`arm`].
pub fn fired() -> u64 {
    FIRED.load(Ordering::Relaxed)
}

/// Matching-or-not hook hits per site since the last [`arm`] (coverage
/// observability: proves a sweep actually reached a site).
pub fn site_hits(site: FaultSite) -> u64 {
    SITE_HITS[site.index()].load(Ordering::Relaxed)
}

/// The hook. Call sites pass the site they model and the buffer about to
/// be consumed; when the armed plan matches and its trigger conditions are
/// met, the buffer is corrupted in place and `true` is returned.
///
/// Disarmed cost is one relaxed atomic load; consumer crates additionally
/// compile the call out entirely without their `faults` feature.
pub fn tamper(site: FaultSite, buf: &mut [u64]) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) || buf.is_empty() {
        return false;
    }
    let mut guard = state().lock().expect("fault injector poisoned");
    let Some(armed) = guard.as_mut() else {
        return false;
    };
    SITE_HITS[site.index()].fetch_add(1, Ordering::Relaxed);
    if armed.plan.site != site || armed.plan.kind.is_control() {
        return false;
    }
    armed.hits += 1;
    if armed.hits <= armed.plan.skip {
        return false;
    }
    if armed.plan.persistence == Persistence::Transient && armed.fired >= 1 {
        return false;
    }
    let draw = splitmix64(armed.plan.seed ^ armed.hits.wrapping_mul(0xA24B_AED4_963E_E407));
    let idx = (draw % buf.len() as u64) as usize;
    match armed.plan.kind {
        FaultKind::BitFlip => {
            let bit = (splitmix64(draw) % u64::from(armed.plan.bit_width)) as u32;
            buf[idx] ^= 1u64 << bit;
        }
        FaultKind::DoubleBitFlip => {
            let w = u64::from(armed.plan.bit_width);
            let b1 = (splitmix64(draw) % w) as u32;
            let b2 = ((splitmix64(draw ^ 1) % (w - 1) + 1 + u64::from(b1)) % w) as u32;
            buf[idx] ^= (1u64 << b1) | (1u64 << b2);
        }
        FaultKind::StuckAt(v) => {
            buf[idx] = v & ((1u64 << armed.plan.bit_width) - 1);
        }
        FaultKind::ZeroRange(len) => {
            let end = (idx + len.max(1)).min(buf.len());
            for w in &mut buf[idx..end] {
                *w = 0;
            }
        }
        // Control kinds were rejected above.
        FaultKind::Truncate | FaultKind::Stall(_) | FaultKind::Disconnect | FaultKind::Panic => {
            unreachable!("control kinds fire only through disrupt")
        }
    }
    armed.fired += 1;
    FIRED.fetch_add(1, Ordering::Relaxed);
    true
}

/// Byte-buffer variant of [`tamper`] for serialized frames: the same plan
/// logic (site match, skip, persistence, seeded draws) applied to a byte
/// slice — the chosen index is a byte, and flips land within that byte.
/// [`FaultKind::StuckAt`]/[`ZeroRange`](FaultKind::ZeroRange) act on bytes.
pub fn tamper_bytes(site: FaultSite, buf: &mut [u8]) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) || buf.is_empty() {
        return false;
    }
    let mut guard = state().lock().expect("fault injector poisoned");
    let Some(armed) = guard.as_mut() else {
        return false;
    };
    SITE_HITS[site.index()].fetch_add(1, Ordering::Relaxed);
    if armed.plan.site != site || armed.plan.kind.is_control() {
        return false;
    }
    armed.hits += 1;
    if armed.hits <= armed.plan.skip {
        return false;
    }
    if armed.plan.persistence == Persistence::Transient && armed.fired >= 1 {
        return false;
    }
    let draw = splitmix64(armed.plan.seed ^ armed.hits.wrapping_mul(0xA24B_AED4_963E_E407));
    let idx = (draw % buf.len() as u64) as usize;
    corrupt_byte(armed.plan.kind, buf, idx, draw);
    armed.fired += 1;
    FIRED.fetch_add(1, Ordering::Relaxed);
    true
}

/// Applies a corruption kind to `buf[idx]` (shared by [`tamper_bytes`]
/// and the corrupting arm of [`disrupt`]).
fn corrupt_byte(kind: FaultKind, buf: &mut [u8], idx: usize, draw: u64) {
    match kind {
        FaultKind::BitFlip => {
            let bit = (splitmix64(draw) % 8) as u32;
            buf[idx] ^= 1u8 << bit;
        }
        FaultKind::DoubleBitFlip => {
            let b1 = (splitmix64(draw) % 8) as u32;
            let b2 = ((splitmix64(draw ^ 1) % 7 + 1 + u64::from(b1)) % 8) as u32;
            buf[idx] ^= (1u8 << b1) | (1u8 << b2);
        }
        FaultKind::StuckAt(v) => {
            buf[idx] = v as u8;
        }
        FaultKind::ZeroRange(len) => {
            let end = (idx + len.max(1)).min(buf.len());
            for b in &mut buf[idx..end] {
                *b = 0;
            }
        }
        FaultKind::Truncate | FaultKind::Stall(_) | FaultKind::Disconnect | FaultKind::Panic => {
            unreachable!("control kinds are handled by disrupt before corruption")
        }
    }
}

/// What a fired chaos plan asks the call site to model. Corruption is
/// applied in place; control effects (truncation, stalls, disconnects,
/// panics) happen outside the buffer, so [`disrupt`] reports them for
/// the socket/worker code to enact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disruption {
    /// The buffer was corrupted in place (a data-corruption kind fired).
    Corrupted,
    /// Deliver only the first `n` bytes, then behave as a peer that
    /// vanished mid-frame (`n` is a seeded strict prefix).
    Truncated(usize),
    /// Stop moving bytes for this many milliseconds before continuing.
    Stalled(u64),
    /// Drop the connection now.
    Disconnected,
    /// Panic the current thread.
    Panicked,
}

/// The network/worker chaos hook. Same plan machinery as [`tamper`]
/// (site match, skip, persistence, seeded draws), but the fired effect
/// may be a control disruption rather than data corruption; the caller
/// models whatever is returned. Corruption kinds mutate `buf` in place
/// and report [`Disruption::Corrupted`]; an empty buffer cannot be
/// corrupted (no fire), while control kinds fire regardless of `buf`.
///
/// Disarmed cost is one relaxed atomic load, and consumer crates compile
/// the call out entirely without their `faults` feature.
pub fn disrupt(site: FaultSite, buf: &mut [u8]) -> Option<Disruption> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = state().lock().expect("fault injector poisoned");
    let armed = guard.as_mut()?;
    SITE_HITS[site.index()].fetch_add(1, Ordering::Relaxed);
    if armed.plan.site != site {
        return None;
    }
    if !armed.plan.kind.is_control() && buf.is_empty() {
        return None;
    }
    armed.hits += 1;
    if armed.hits <= armed.plan.skip {
        return None;
    }
    if armed.plan.persistence == Persistence::Transient && armed.fired >= 1 {
        return None;
    }
    let draw = splitmix64(armed.plan.seed ^ armed.hits.wrapping_mul(0xA24B_AED4_963E_E407));
    let effect = match armed.plan.kind {
        FaultKind::Truncate => {
            // A strict prefix: at least one byte is always withheld.
            Disruption::Truncated(if buf.is_empty() {
                0
            } else {
                (draw % buf.len() as u64) as usize
            })
        }
        FaultKind::Stall(ms) => Disruption::Stalled(ms),
        FaultKind::Disconnect => Disruption::Disconnected,
        FaultKind::Panic => Disruption::Panicked,
        kind => {
            let idx = (draw % buf.len() as u64) as usize;
            corrupt_byte(kind, buf, idx, draw);
            Disruption::Corrupted
        }
    };
    armed.fired += 1;
    FIRED.fetch_add(1, Ordering::Relaxed);
    Some(effect)
}

/// Convenience hook for per-limb residue matrices: tampers each row in
/// order (serially, before any parallel dispatch, so the firing sequence
/// is independent of thread count).
pub fn tamper_rows(site: FaultSite, rows: &mut [Vec<u64>]) -> bool {
    let mut any = false;
    for row in rows {
        any |= tamper(site, row);
    }
    any
}

/// Runs `f` with the injector temporarily silenced, restoring the previous
/// armed state afterwards — models re-dispatching work to a known-good
/// spare unit. Panic-safe.
pub fn suppressed<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.store(self.0, Ordering::Release);
        }
    }
    let _restore = Restore(ACTIVE.swap(false, Ordering::AcqRel));
    f()
}

/// Serialises tests that arm the global injector. Every test (in any
/// crate) that calls [`arm`] should hold this for its duration; the guard
/// also recovers from a poisoned lock so one failing test doesn't cascade.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hook_is_inert() {
        let _l = test_lock();
        disarm();
        let mut buf = vec![3u64; 8];
        assert!(!tamper(FaultSite::RnsResidue, &mut buf));
        assert_eq!(buf, vec![3u64; 8]);
    }

    #[test]
    fn transient_fires_exactly_once_and_is_reproducible() {
        let _l = test_lock();
        let run = || {
            arm(FaultPlan::transient(
                FaultSite::NttTwiddle,
                FaultKind::BitFlip,
                0xFEED,
            ));
            let mut buf = vec![0u64; 32];
            assert!(tamper(FaultSite::NttTwiddle, &mut buf));
            let first = buf.clone();
            assert!(!tamper(FaultSite::NttTwiddle, &mut buf));
            assert_eq!(buf, first, "transient must not fire twice");
            disarm();
            first
        };
        assert_eq!(run(), run(), "same seed must corrupt identically");
    }

    #[test]
    fn persistent_fires_every_hit() {
        let _l = test_lock();
        arm(FaultPlan::persistent(
            FaultSite::ParScratch,
            FaultKind::StuckAt(0xAB),
            7,
        ));
        let mut buf = vec![1u64; 16];
        for _ in 0..4 {
            assert!(tamper(FaultSite::ParScratch, &mut buf));
        }
        assert_eq!(fired(), 4);
        disarm();
    }

    #[test]
    fn skip_delays_the_first_fire() {
        let _l = test_lock();
        arm(FaultPlan::transient(FaultSite::KeyCache, FaultKind::BitFlip, 1).after(2));
        let mut buf = vec![9u64; 8];
        assert!(!tamper(FaultSite::KeyCache, &mut buf));
        assert!(!tamper(FaultSite::KeyCache, &mut buf));
        assert_eq!(buf, vec![9u64; 8]);
        assert!(tamper(FaultSite::KeyCache, &mut buf));
        disarm();
    }

    #[test]
    fn mismatched_site_counts_hits_but_never_fires() {
        let _l = test_lock();
        arm(FaultPlan::persistent(
            FaultSite::HbmChannel,
            FaultKind::BitFlip,
            3,
        ));
        let mut buf = vec![5u64; 4];
        assert!(!tamper(FaultSite::RnsResidue, &mut buf));
        assert_eq!(buf, vec![5u64; 4]);
        assert_eq!(site_hits(FaultSite::RnsResidue), 1);
        assert_eq!(fired(), 0);
        disarm();
    }

    #[test]
    fn bit_flip_respects_modeled_word_width() {
        let _l = test_lock();
        for seed in 0..64u64 {
            arm(FaultPlan::persistent(FaultSite::RnsResidue, FaultKind::BitFlip, seed).width(28));
            let mut buf = vec![0u64; 8];
            assert!(tamper(FaultSite::RnsResidue, &mut buf));
            let word = *buf.iter().find(|&&w| w != 0).expect("one bit flipped");
            assert!(
                word < (1 << 28),
                "flip escaped the datapath width: {word:#x}"
            );
            disarm();
        }
    }

    #[test]
    fn double_flip_touches_two_distinct_bits() {
        let _l = test_lock();
        arm(FaultPlan::transient(
            FaultSite::RnsResidue,
            FaultKind::DoubleBitFlip,
            11,
        ));
        let mut buf = vec![0u64; 4];
        assert!(tamper(FaultSite::RnsResidue, &mut buf));
        let word = *buf.iter().find(|&&w| w != 0).expect("bits flipped");
        assert_eq!(word.count_ones(), 2);
        disarm();
    }

    #[test]
    fn zero_range_clamps_to_buffer_end() {
        let _l = test_lock();
        arm(FaultPlan::transient(
            FaultSite::ParScratch,
            FaultKind::ZeroRange(1000),
            5,
        ));
        let mut buf = vec![7u64; 8];
        assert!(tamper(FaultSite::ParScratch, &mut buf));
        assert!(buf.contains(&0));
        disarm();
    }

    #[test]
    fn tamper_bytes_flips_within_one_byte_and_is_reproducible() {
        let _l = test_lock();
        let run = || {
            arm(FaultPlan::transient(
                FaultSite::WireFrame,
                FaultKind::BitFlip,
                0xBEEF,
            ));
            let mut buf = vec![0u8; 64];
            assert!(tamper_bytes(FaultSite::WireFrame, &mut buf));
            assert_eq!(
                buf.iter().map(|b| b.count_ones()).sum::<u32>(),
                1,
                "exactly one bit flipped"
            );
            assert!(!tamper_bytes(FaultSite::WireFrame, &mut buf));
            disarm();
            buf
        };
        assert_eq!(run(), run(), "same seed must corrupt identically");
    }

    #[test]
    fn control_kinds_are_inert_in_the_corruption_hooks() {
        let _l = test_lock();
        for kind in [
            FaultKind::Truncate,
            FaultKind::Stall(50),
            FaultKind::Disconnect,
            FaultKind::Panic,
        ] {
            arm(FaultPlan::persistent(FaultSite::SocketRead, kind, 9));
            let mut words = vec![5u64; 8];
            let mut bytes = vec![5u8; 8];
            assert!(!tamper(FaultSite::SocketRead, &mut words));
            assert!(!tamper_bytes(FaultSite::SocketRead, &mut bytes));
            assert_eq!(words, vec![5u64; 8]);
            assert_eq!(bytes, vec![5u8; 8]);
            assert_eq!(fired(), 0, "{kind:?} must not fire through tamper");
            disarm();
        }
    }

    #[test]
    fn disrupt_reports_control_effects_and_is_reproducible() {
        let _l = test_lock();
        let run = || {
            arm(FaultPlan::transient(
                FaultSite::SocketRead,
                FaultKind::Truncate,
                0x7A0,
            ));
            let mut buf = vec![1u8; 100];
            let effect = disrupt(FaultSite::SocketRead, &mut buf).expect("fires");
            let Disruption::Truncated(n) = effect else {
                panic!("expected truncation, got {effect:?}");
            };
            assert!(n < buf.len(), "truncation must be a strict prefix");
            assert_eq!(buf, vec![1u8; 100], "truncation must not corrupt bytes");
            assert!(disrupt(FaultSite::SocketRead, &mut buf).is_none());
            disarm();
            n
        };
        assert_eq!(run(), run(), "same seed must truncate identically");

        arm(FaultPlan::transient(
            FaultSite::ShardWorker,
            FaultKind::Panic,
            3,
        ));
        assert_eq!(
            disrupt(FaultSite::ShardWorker, &mut []),
            Some(Disruption::Panicked),
            "control kinds fire on an empty buffer"
        );
        disarm();

        arm(FaultPlan::transient(
            FaultSite::SocketStall,
            FaultKind::Stall(25),
            4,
        ));
        assert_eq!(
            disrupt(FaultSite::SocketStall, &mut []),
            Some(Disruption::Stalled(25))
        );
        disarm();
    }

    #[test]
    fn disrupt_corrupts_in_place_for_data_kinds() {
        let _l = test_lock();
        arm(FaultPlan::transient(
            FaultSite::SocketWrite,
            FaultKind::BitFlip,
            0xC0,
        ));
        let mut buf = vec![0u8; 32];
        assert_eq!(
            disrupt(FaultSite::SocketWrite, &mut buf),
            Some(Disruption::Corrupted)
        );
        assert_eq!(
            buf.iter().map(|b| b.count_ones()).sum::<u32>(),
            1,
            "exactly one bit flipped"
        );
        // An empty buffer cannot be corrupted: no fire, still armed.
        disarm();
        arm(FaultPlan::transient(
            FaultSite::SocketWrite,
            FaultKind::BitFlip,
            0xC0,
        ));
        assert_eq!(disrupt(FaultSite::SocketWrite, &mut []), None);
        assert_eq!(fired(), 0);
        disarm();
    }

    #[test]
    fn all_sites_are_enumerated_once() {
        let mut seen = std::collections::HashSet::new();
        for site in FaultSite::ALL {
            assert!(seen.insert(site.index()), "duplicate index for {site:?}");
            assert!(!site.as_str().is_empty());
        }
        assert_eq!(seen.len(), FaultSite::ALL.len());
    }

    #[test]
    fn suppressed_silences_and_restores() {
        let _l = test_lock();
        arm(FaultPlan::persistent(
            FaultSite::RnsResidue,
            FaultKind::BitFlip,
            2,
        ));
        let mut buf = vec![1u64; 8];
        suppressed(|| {
            assert!(!tamper(FaultSite::RnsResidue, &mut buf));
        });
        assert_eq!(buf, vec![1u64; 8]);
        assert!(armed(), "suppression must restore the armed state");
        assert!(tamper(FaultSite::RnsResidue, &mut buf));
        disarm();
    }
}
