//! Poseidon's operator layer — the paper's primary contribution.
//!
//! Poseidon's key idea (§II–§IV) is that every CKKS basic operation can be
//! decomposed into five reusable *operators* — Modular Addition (MA),
//! Modular Multiplication (MM), NTT/INTT, Automorphism, and Shared Barrett
//! Reduction (SBT) — and that instantiating one hardware core per operator
//! and time-multiplexing them beats instantiating per-operation datapaths.
//!
//! This crate models that layer functionally:
//!
//! * [`operator`] — the operator vocabulary and element-level count algebra.
//! * [`decompose`] — the operation → operator decomposition for every basic
//!   operation (paper Table I / Fig. 7), parameterised by `(N, L, k)`, plus
//!   the expansion of Bootstrapping into its basic-operation sequence.
//! * [`auto`] — **HFAuto**, the hardware-friendly automorphism (§III-B):
//!   the index mapping on an N-element vector decomposed into two row
//!   mappings, a dimension switch, and a column mapping over `R = N/C`
//!   sub-vectors of lane width `C`. Bit-exact against the reference Galois
//!   automorphism (the paper's lemma, machine-checked).
//! * [`pool`] — the operator pool: one functional core per operator with
//!   reuse counters, executing real arithmetic through the substrate crates
//!   (the software analogue of Fig. 2's shared cores).
//! * [`ops`] — [`HomomorphicOps`], the basic-operation surface shared by
//!   the evaluator, the trace recorder, and the machine, so one workload
//!   definition drives any backend.
//! * [`plan`] — the evaluation planner (software HFAuto): SSA dataflow
//!   capture, cross-graph rotation hoisting, noise-aware rescale
//!   placement, dead-value elimination, bootstrap insertion on exhausted
//!   chains, cost-model-aware live-range scheduling, and a
//!   backend-generic plan executor, plus the `.pos` compile pipeline.

pub mod auto;
pub mod decompose;
pub mod machine;
pub mod operator;
pub mod ops;
pub mod plan;
pub mod pool;
pub mod recorder;

pub use auto::HfAuto;
pub use decompose::{BasicOp, OpParams};
pub use machine::PoseidonMachine;
pub use operator::{Operator, OperatorCounts};
pub use ops::HomomorphicOps;
pub use plan::{EvalGraph, Plan, PlanError, PlanOptions};
pub use pool::OperatorPool;
