//! HFAuto — the hardware-friendly automorphism (paper §III-B, Fig. 6).
//!
//! The Galois automorphism maps coefficient `idx` to `idx·g mod N` (with a
//! sign flip whenever `idx·g mod 2N ≥ N`). Done element-at-a-time — the
//! "naive Auto" baseline — a single index map per cycle makes the operator
//! the pipeline's bottleneck.
//!
//! HFAuto segments the N-element vector into `R = N/C` rows of lane width
//! `C` and observes (the paper's lemma, `⌊a mod CR / C⌋ = ⌊a/C⌋ mod R`)
//! that the destination of element `(i, j)` factors as
//!
//! * row `I = (i·g + ⌊j·g / C⌋) mod R` — stage ❶ permutes whole rows by
//!   `i ↦ i·g mod R`, stage ❷ rotates each *column* `j` by the extra
//!   offset `⌊j·g/C⌋ mod R` (the per-FIFO cyclic shift),
//! * stage ❸ switches the storage dimension (the BRAM transpose), and
//! * column `J = j·g mod C` — stage ❹ permutes columns.
//!
//! Every stage moves `C` elements per step instead of 1 — the parallelism
//! the paper trades a little extra logic for (Tables VIII/IX).

#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    pub fn hfauto() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("auto.hfauto"))
    }
}

/// The HFAuto engine for a fixed `(N, C)` split.
///
/// # Examples
///
/// ```
/// use poseidon_core::HfAuto;
/// let hf = HfAuto::new(16, 4);
/// let data: Vec<u64> = (0..16).collect();
/// let q = 97;
/// let out = hf.apply(&data, 3, q);
/// // Element 1 (X¹) maps to X³ with no sign change: out[3] = data[1].
/// assert_eq!(out[3], data[1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HfAuto {
    n: usize,
    c: usize,
    r: usize,
}

/// Per-stage element-movement statistics for the cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HfAutoStats {
    /// Stage ❶ row reads (each moves C elements).
    pub row_reads: u64,
    /// Stage ❷ FIFO rotations (each moves C elements).
    pub fifo_shifts: u64,
    /// Stage ❸ dimension-switch steps.
    pub transpose_steps: u64,
    /// Stage ❹ column writes.
    pub column_writes: u64,
}

impl HfAuto {
    /// Creates the engine for vector length `n` split into lanes of `c`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` and `c` are powers of two with `c ≤ n`.
    pub fn new(n: usize, c: usize) -> Self {
        assert!(
            n.is_power_of_two() && c.is_power_of_two(),
            "powers of two required"
        );
        assert!(c >= 1 && c <= n, "lane width must divide the vector");
        Self { n, c, r: n / c }
    }

    /// Vector length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane width `C`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.c
    }

    /// Segment count `R = N/C`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.r
    }

    /// Applies the negacyclic Galois automorphism `X ↦ X^g` to `data`
    /// modulo `q` using the four-stage HFAuto schedule. Bit-exact with
    /// [`he_rns::RnsPoly::automorphism`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N`, `g` is even, or values are unreduced.
    pub fn apply(&self, data: &[u64], g: u64, q: u64) -> Vec<u64> {
        self.apply_with_stats(data, g, q).0
    }

    /// [`apply`] plus the per-stage movement statistics.
    ///
    /// [`apply`]: Self::apply
    pub fn apply_with_stats(&self, data: &[u64], g: u64, q: u64) -> (Vec<u64>, HfAutoStats) {
        assert_eq!(data.len(), self.n, "input length must equal N");
        assert_eq!(g % 2, 1, "Galois element must be odd");
        debug_assert!(data.iter().all(|&v| v < q), "values must be reduced");
        #[cfg(feature = "telemetry")]
        let _span = tel::hfauto().span(self.n as u64);
        let (n, c, r) = (self.n as u64, self.c as u64, self.r as u64);
        let mut stats = HfAutoStats::default();

        // Stage ❶ with sign pre-application: read row i, negate elements
        // whose destination wraps past X^N, and place the row at i·g mod R.
        // (The sign comparator shares the SBT datapath in hardware.)
        let mut grid = vec![vec![0u64; self.c]; self.r];
        for i in 0..r {
            let dest_row = (i * g) % r;
            for j in 0..c {
                let idx = i * c + j;
                let e = (idx * g) % (2 * n);
                let v = data[idx as usize];
                grid[dest_row as usize][j as usize] = if e >= n && v != 0 { q - v } else { v };
            }
            stats.row_reads += 1;
        }

        // Stage ❷: per-column cyclic rotation by ⌊j·g/C⌋ mod R (the FIFO
        // shift — all C columns advance in parallel each step).
        let mut shifted = vec![vec![0u64; self.c]; self.r];
        for j in 0..c {
            let off = (j * g / c) % r;
            for i in 0..r {
                let dest = (i + off) % r;
                shifted[dest as usize][j as usize] = grid[i as usize][j as usize];
            }
        }
        stats.fifo_shifts += r;

        // Stage ❸: dimension switch — in hardware a diagonal BRAM layout;
        // functionally the identity on the logical grid, but it costs R
        // C-wide steps, which the stats record.
        stats.transpose_steps += r;

        // Stage ❹: column permutation j ↦ j·g mod C, written back C-wide.
        let mut out = vec![0u64; self.n];
        for i in 0..r {
            for j in 0..c {
                let dest_col = (j * g) % c;
                out[(i * c + dest_col) as usize] = shifted[i as usize][j as usize];
            }
            stats.column_writes += 1;
        }
        (out, stats)
    }

    /// The naive single-index-per-cycle automorphism (the paper's "Auto"
    /// baseline in Tables VIII/IX). Same output, element-at-a-time cost.
    pub fn apply_naive(&self, data: &[u64], g: u64, q: u64) -> (Vec<u64>, u64) {
        assert_eq!(data.len(), self.n, "input length must equal N");
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let n = self.n as u64;
        let mut out = vec![0u64; self.n];
        let mut cycles = 0u64;
        for (idx, &v) in data.iter().enumerate() {
            let e = (idx as u64 * g) % (2 * n);
            if e < n {
                out[e as usize] = v;
            } else {
                out[(e - n) as usize] = if v == 0 { 0 } else { q - v };
            }
            cycles += 1; // one index mapping per cycle
        }
        (out, cycles)
    }

    /// Modelled latency in C-wide steps for the HFAuto schedule: each of
    /// the four stages streams R rows.
    pub fn hf_latency_steps(&self) -> u64 {
        4 * self.r as u64
    }

    /// Modelled latency in cycles for the naive baseline: one element per
    /// cycle.
    pub fn naive_latency_cycles(&self) -> u64 {
        self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_rns::{RnsBasis, RnsPoly};

    fn reference(data: &[i64], g: u64, n: usize) -> Vec<i64> {
        let basis = RnsBasis::generate(n, 28, 1);
        let p = RnsPoly::from_i64_coeffs(&basis, data);
        p.automorphism(g).to_centered_coeffs()
    }

    #[test]
    fn hfauto_matches_reference_automorphism() {
        let n = 64;
        let q = he_math::prime::ntt_prime(28, 2 * n as u64).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 5) % q).collect();
        let signed: Vec<i64> = data
            .iter()
            .map(|&v| he_math::modops::center(v, q))
            .collect();
        for c in [1usize, 4, 8, 64] {
            let hf = HfAuto::new(n, c);
            for g in [3u64, 5, 25, 127] {
                let got = hf.apply(&data, g, q);
                let got_signed: Vec<i64> =
                    got.iter().map(|&v| he_math::modops::center(v, q)).collect();
                // Reference basis has a different prime; compare via signed
                // semantics with small values.
                let small: Vec<i64> = (0..n as i64).collect();
                let small_u: Vec<u64> = small
                    .iter()
                    .map(|&v| he_math::modops::reduce_i64(v, q))
                    .collect();
                let hf_small: Vec<i64> = hf
                    .apply(&small_u, g, q)
                    .iter()
                    .map(|&v| he_math::modops::center(v, q))
                    .collect();
                assert_eq!(hf_small, reference(&small, g, n), "c={c} g={g}");
                let _ = (got_signed, signed.clone());
            }
        }
    }

    #[test]
    fn hfauto_equals_naive_for_all_params() {
        let n = 128;
        let q = he_math::prime::ntt_prime(28, 2 * n as u64).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| (i * i * 7 + 3) % q).collect();
        for c in [2usize, 16, 32, 128] {
            let hf = HfAuto::new(n, c);
            for g in [3u64, 9, 255] {
                let (naive, _) = hf.apply_naive(&data, g, q);
                assert_eq!(hf.apply(&data, g, q), naive, "c={c} g={g}");
            }
        }
    }

    #[test]
    fn identity_element_is_identity() {
        let n = 32;
        let q = 97u64;
        let hf = HfAuto::new(n, 8);
        let data: Vec<u64> = (0..n as u64).collect();
        assert_eq!(hf.apply(&data, 1, q), data);
    }

    #[test]
    fn latency_model_favours_hfauto() {
        let hf = HfAuto::new(1 << 16, 512);
        // 4 stages × 128 rows = 512 C-wide steps vs 65536 scalar cycles.
        assert_eq!(hf.hf_latency_steps(), 512);
        assert_eq!(hf.naive_latency_cycles(), 65536);
        assert!(hf.hf_latency_steps() * 64 < hf.naive_latency_cycles() * 2);
    }

    #[test]
    fn stats_count_all_four_stages() {
        let hf = HfAuto::new(64, 8);
        let q = 97u64;
        let data = vec![1u64; 64];
        let (_, stats) = hf.apply_with_stats(&data, 3, q);
        assert_eq!(stats.row_reads, 8);
        assert_eq!(stats.fifo_shifts, 8);
        assert_eq!(stats.transpose_steps, 8);
        assert_eq!(stats.column_writes, 8);
    }
}
