//! The operator pool: one functional core per operator, shared and
//! time-multiplexed — the software analogue of Fig. 2's datapath.
//!
//! Each core performs real arithmetic through the substrate crates and
//! counts how many element operations it has retired. Higher layers (the
//! simulator's functional mode, the examples) execute CKKS dataflows
//! through the pool, so the "operator reuse" claim is observable: the same
//! five cores serve every basic operation.

use he_math::BarrettReducer;
use he_ntt::{FusedNtt, NttTable};
use std::cell::Cell;
use std::collections::HashMap;

use crate::auto::HfAuto;
use crate::operator::{Operator, OperatorCounts};

/// Instance-local metric bundle backing the usage counters when telemetry
/// is on. The metrics are *unregistered* ([`poseidon_telemetry::Metric::new`])
/// so concurrent pools (the default test harness runs pools in parallel)
/// keep exact per-instance counts; [`OperatorPool::snapshot`] exports them
/// under the `pool.*` scope names.
#[cfg(feature = "telemetry")]
#[derive(Debug)]
struct PoolMetrics {
    ma: std::sync::Arc<poseidon_telemetry::Metric>,
    mm: std::sync::Arc<poseidon_telemetry::Metric>,
    ntt: std::sync::Arc<poseidon_telemetry::Metric>,
    auto: std::sync::Arc<poseidon_telemetry::Metric>,
    sbt: std::sync::Arc<poseidon_telemetry::Metric>,
}

#[cfg(feature = "telemetry")]
impl PoolMetrics {
    fn new() -> Self {
        use poseidon_telemetry::Metric;
        Self {
            ma: Metric::new(),
            mm: Metric::new(),
            ntt: Metric::new(),
            auto: Metric::new(),
            sbt: Metric::new(),
        }
    }

    fn metric(&self, op: Operator) -> &poseidon_telemetry::Metric {
        match op {
            Operator::Ma => &self.ma,
            Operator::Mm => &self.mm,
            Operator::Ntt => &self.ntt,
            Operator::Automorphism => &self.auto,
            Operator::Sbt => &self.sbt,
        }
    }
}

/// Inert stand-in for [`poseidon_telemetry::Span`] when telemetry is
/// compiled out, so `retire()` call sites bind a guard either way.
#[cfg(not(feature = "telemetry"))]
struct NoSpan;

/// A pool of the five operator cores for one `(N, lanes, fusion-k)`
/// configuration, serving any modulus (tables are cached per prime).
///
/// # Examples
///
/// ```
/// use poseidon_core::OperatorPool;
/// let q = he_math::prime::ntt_prime(28, 64).unwrap();
/// let mut pool = OperatorPool::new(32, 8, 3);
/// let a = vec![1u64; 32];
/// let b = vec![5u64; 32];
/// let s = pool.ma(&a, &b, q);
/// assert_eq!(s[0], 6);
/// assert!(pool.usage().ma >= 32);
/// ```
#[derive(Debug)]
pub struct OperatorPool {
    n: usize,
    lanes: usize,
    fusion_k: u32,
    /// Cached per-prime NTT machinery (the twiddle BRAM contents).
    tables: HashMap<u64, (NttTable, FusedNtt)>,
    reducers: HashMap<u64, BarrettReducer>,
    auto: HfAuto,
    #[cfg(not(feature = "telemetry"))]
    usage: Cell<OperatorCounts>,
    #[cfg(feature = "telemetry")]
    metrics: PoolMetrics,
    /// `Cell`: bumped while a telemetry retire-span still borrows `self`.
    retire_checks: Cell<RetireCheckCounts>,
}

impl OperatorPool {
    /// Creates a pool for degree `n`, `lanes` vector lanes, and NTT fusion
    /// degree `fusion_k`.
    ///
    /// # Panics
    ///
    /// Panics if `n`/`lanes` are not powers of two or `fusion_k` is out of
    /// range for `n`.
    pub fn new(n: usize, lanes: usize, fusion_k: u32) -> Self {
        assert!(
            fusion_k >= 1 && fusion_k <= n.trailing_zeros(),
            "bad fusion degree"
        );
        Self {
            n,
            lanes: lanes.min(n),
            fusion_k,
            tables: HashMap::new(),
            reducers: HashMap::new(),
            auto: HfAuto::new(n, lanes.min(n)),
            #[cfg(not(feature = "telemetry"))]
            usage: Cell::new(OperatorCounts::ZERO),
            #[cfg(feature = "telemetry")]
            metrics: PoolMetrics::new(),
            retire_checks: Cell::new(RetireCheckCounts::default()),
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Vector lane width `C`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cumulative element operations retired per operator core.
    ///
    /// With the `telemetry` feature on this is a *view* over the pool's
    /// instance-local metrics — the same counters [`snapshot`] exports —
    /// so the two can never disagree.
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn usage(&self) -> OperatorCounts {
        #[cfg(not(feature = "telemetry"))]
        {
            self.usage.get()
        }
        #[cfg(feature = "telemetry")]
        {
            OperatorCounts {
                ma: self.metrics.ma.items(),
                mm: self.metrics.mm.items(),
                ntt: self.metrics.ntt.items(),
                auto: self.metrics.auto.items(),
                sbt: self.metrics.sbt.items(),
            }
        }
    }

    /// Resets the usage counters.
    pub fn reset_usage(&mut self) {
        #[cfg(not(feature = "telemetry"))]
        self.usage.set(OperatorCounts::ZERO);
        #[cfg(feature = "telemetry")]
        for op in Operator::ALL {
            self.metrics.metric(op).reset();
        }
    }

    /// Exports this pool's counters as a snapshot under the `pool.*` scope
    /// names (`pool.ma`, `pool.mm`, `pool.ntt`, `pool.auto`, `pool.sbt`),
    /// with per-core busy time and latency histograms.
    #[cfg(feature = "telemetry")]
    pub fn snapshot(&self) -> poseidon_telemetry::Snapshot {
        poseidon_telemetry::Snapshot::from_metrics([
            ("pool.ma", &*self.metrics.ma),
            ("pool.mm", &*self.metrics.mm),
            ("pool.ntt", &*self.metrics.ntt),
            ("pool.auto", &*self.metrics.auto),
            ("pool.sbt", &*self.metrics.sbt),
        ])
    }

    fn bump(&self, op: Operator, elems: u64) {
        #[cfg(not(feature = "telemetry"))]
        {
            let mut u = self.usage.get();
            match op {
                Operator::Ma => u.ma += elems,
                Operator::Mm => u.mm += elems,
                Operator::Ntt => u.ntt += elems,
                Operator::Automorphism => u.auto += elems,
                Operator::Sbt => u.sbt += elems,
            }
            self.usage.set(u);
        }
        #[cfg(feature = "telemetry")]
        self.metrics.metric(op).add(elems);
    }

    /// Counts `elems` element ops on `op`'s core; with telemetry on, the
    /// returned guard also times the enclosing region into the core's
    /// metric (the no-telemetry variant returns an inert guard).
    #[cfg(feature = "telemetry")]
    fn retire(&self, op: Operator, elems: u64) -> poseidon_telemetry::Span<'_> {
        self.metrics.metric(op).span(elems)
    }

    #[cfg(not(feature = "telemetry"))]
    fn retire(&self, op: Operator, elems: u64) -> NoSpan {
        self.bump(op, elems);
        NoSpan
    }

    fn reducer(&mut self, q: u64) -> BarrettReducer {
        *self
            .reducers
            .entry(q)
            .or_insert_with(|| BarrettReducer::new(q))
    }

    fn ensure_tables(&mut self, q: u64) {
        if !self.tables.contains_key(&q) {
            let table = NttTable::new(self.n, q);
            let fused = FusedNtt::new(&table, self.fusion_k);
            self.tables.insert(q, (table, fused));
        }
    }

    /// MA core: element-wise modular addition.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn ma(&mut self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let _op = self.retire(Operator::Ma, a.len() as u64);
        a.iter()
            .zip(b)
            .map(|(&x, &y)| he_math::modops::add_mod(x, y, q))
            .collect()
    }

    /// MM core: element-wise modular multiplication through the shared
    /// Barrett reducer (each product issues one SBT).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mm(&mut self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let red = self.reducer(q);
        let _op = self.retire(Operator::Mm, a.len() as u64);
        self.bump(Operator::Sbt, a.len() as u64);
        a.iter().zip(b).map(|(&x, &y)| red.mul(x, y)).collect()
    }

    /// NTT core: forward transform through the fused radix-2^k kernels.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N` or `q` is not an NTT prime for `N`.
    pub fn ntt(&mut self, data: &mut [u64], q: u64) {
        self.ensure_tables(q);
        let (_, fused) = &self.tables[&q];
        let phases = fused.phases() as u64;
        let _op = self.retire(Operator::Ntt, data.len() as u64 * phases);
        // One shared reduction per element per fused phase.
        self.bump(Operator::Sbt, data.len() as u64 * phases);
        fused.forward(data);
    }

    /// INTT core (inverse transform; same counting as forward).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N` or `q` is not an NTT prime for `N`.
    pub fn intt(&mut self, data: &mut [u64], q: u64) {
        self.ensure_tables(q);
        let (table, fused) = &self.tables[&q];
        let phases = fused.phases() as u64;
        let _op = self.retire(Operator::Ntt, data.len() as u64 * phases);
        self.bump(Operator::Sbt, data.len() as u64 * phases);
        table.inverse(data);
    }

    /// Automorphism core (HFAuto schedule).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != N` or `g` is even.
    pub fn automorphism(&mut self, data: &[u64], g: u64, q: u64) -> Vec<u64> {
        let _op = self.retire(Operator::Automorphism, data.len() as u64);
        self.bump(Operator::Sbt, data.len() as u64); // sign comparisons
        self.auto.apply(data, g, q)
    }

    /// Automorphism core in evaluation-domain mode: the Galois map on an
    /// NTT-form residue vector is a pure index permutation (see
    /// [`he_ntt::galois_permutation`]), so the core retires the same
    /// element count as the coefficient-domain path but issues **no** SBT
    /// traffic — there is no sign logic to evaluate. This is the datapath
    /// the hoisted rotation engine drives.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != perm.len()`.
    pub fn automorphism_eval(&mut self, data: &[u64], perm: &[usize]) -> Vec<u64> {
        assert_eq!(data.len(), perm.len(), "permutation length mismatch");
        let _op = self.retire(Operator::Automorphism, data.len() as u64);
        perm.iter().map(|&k| data[k]).collect()
    }

    /// Negacyclic polynomial product through the pooled cores: NTT both
    /// inputs, MM pointwise, INTT back — the PMult datapath.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths differ from `N`.
    pub fn poly_mul(&mut self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.ntt(&mut fa, q);
        self.ntt(&mut fb, q);
        let mut prod = self.mm(&fa, &fb, q);
        self.intt(&mut prod, q);
        prod
    }
}

/// Counters for the retire-boundary integrity checks
/// ([`OperatorPool::ma_checked`] / [`OperatorPool::sub_checked`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetireCheckCounts {
    /// Retire boundaries that ran the sum-invariant check.
    pub checked: u64,
    /// Checks whose invariant failed (corruption between compute and
    /// retire).
    pub detected: u64,
}

impl OperatorPool {
    /// Retire-boundary integrity counters accumulated so far.
    pub fn retire_checks(&self) -> RetireCheckCounts {
        self.retire_checks.get()
    }

    fn bump_retire_check(&self, detected: bool) {
        let mut c = self.retire_checks.get();
        c.checked += 1;
        c.detected += u64::from(detected);
        self.retire_checks.set(c);
    }

    /// MA core with an ABFT sum-invariant verified at the retire boundary.
    ///
    /// While the adder computes `c_i = a_i + b_i − w_i·q` it also counts
    /// the wraps `w = Σ w_i`; at retire the exact (u128) identity
    /// `Σ c_i + w·q = Σ a_i + Σ b_i` is re-checked against the output
    /// buffer as written back. Any single-word corruption of the result —
    /// a flipped bit `2^j` with `j` below the prime's width is never a
    /// multiple of `q` — breaks the identity, so single-residue faults at
    /// this boundary are detected with certainty, at the cost of two
    /// u128 accumulations per element instead of a duplicate execution.
    ///
    /// With the `faults` feature and an armed `RnsResidue` plan, the
    /// output buffer is tampered between compute and retire — the model
    /// of a writeback-path upset.
    ///
    /// # Errors
    ///
    /// [`he_rns::IntegrityError::ChecksumMismatch`] when the retire
    /// invariant fails; the caller decides whether to recompute (retry)
    /// or escalate.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn ma_checked(
        &mut self,
        a: &[u64],
        b: &[u64],
        q: u64,
    ) -> Result<Vec<u64>, he_rns::IntegrityError> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let _op = self.retire(Operator::Ma, a.len() as u64);
        let mut wraps: u128 = 0;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let s = x as u128 + y as u128;
            if s >= q as u128 {
                wraps += 1;
                out.push((s - q as u128) as u64);
            } else {
                out.push(s as u64);
            }
        }
        #[cfg(feature = "faults")]
        poseidon_faults::tamper(poseidon_faults::FaultSite::RnsResidue, &mut out);
        let sum_in: u128 = a.iter().zip(b).map(|(&x, &y)| x as u128 + y as u128).sum();
        let sum_out: u128 = out.iter().map(|&v| v as u128).sum();
        let bad = sum_out + wraps * q as u128 != sum_in;
        self.bump_retire_check(bad);
        if bad {
            return Err(he_rns::IntegrityError::ChecksumMismatch { site: "pool.ma" });
        }
        Ok(out)
    }

    /// MA core in subtract mode with the retire-boundary sum invariant:
    /// `Σ c_i = Σ a_i − Σ b_i + w·q` with `w` the borrow count. See
    /// [`ma_checked`](Self::ma_checked).
    ///
    /// # Errors
    ///
    /// [`he_rns::IntegrityError::ChecksumMismatch`] when the invariant
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn sub_checked(
        &mut self,
        a: &[u64],
        b: &[u64],
        q: u64,
    ) -> Result<Vec<u64>, he_rns::IntegrityError> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let _op = self.retire(Operator::Ma, a.len() as u64);
        let mut borrows: i128 = 0;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            if x >= y {
                out.push(x - y);
            } else {
                borrows += 1;
                out.push(x + q - y);
            }
        }
        #[cfg(feature = "faults")]
        poseidon_faults::tamper(poseidon_faults::FaultSite::RnsResidue, &mut out);
        let sum_a: i128 = a.iter().map(|&v| v as i128).sum();
        let sum_b: i128 = b.iter().map(|&v| v as i128).sum();
        let sum_out: i128 = out.iter().map(|&v| v as i128).sum();
        let bad = sum_out != sum_a - sum_b + borrows * q as i128;
        self.bump_retire_check(bad);
        if bad {
            return Err(he_rns::IntegrityError::ChecksumMismatch { site: "pool.ma" });
        }
        Ok(out)
    }

    /// MA core in subtract mode (hardware MA handles add and subtract via
    /// operand negation on the same datapath).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn sub(&mut self, a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let _op = self.retire(Operator::Ma, a.len() as u64);
        a.iter()
            .zip(b)
            .map(|(&x, &y)| he_math::modops::sub_mod(x, y, q))
            .collect()
    }

    /// MM core in vector-scalar mode (the RNSconv cascade of Fig. 4 feeds
    /// one scalar operand per prime).
    pub fn mm_scalar(&mut self, a: &[u64], s: u64, q: u64) -> Vec<u64> {
        let red = self.reducer(q);
        let s = s % q;
        let _op = self.retire(Operator::Mm, a.len() as u64);
        self.bump(Operator::Sbt, a.len() as u64);
        a.iter().map(|&x| red.mul(x, s)).collect()
    }

    /// MA core in accumulate mode: `acc += a (mod q)`, in place.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn ma_acc(&mut self, acc: &mut [u64], a: &[u64], q: u64) {
        assert_eq!(acc.len(), a.len(), "operand length mismatch");
        let _op = self.retire(Operator::Ma, a.len() as u64);
        for (x, &y) in acc.iter_mut().zip(a) {
            *x = he_math::modops::add_mod(*x, y, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize) -> u64 {
        he_math::prime::ntt_prime(28, 2 * n as u64).unwrap()
    }

    #[test]
    fn cores_compute_correct_arithmetic() {
        let n = 32;
        let q = q(n);
        let mut pool = OperatorPool::new(n, 8, 3);
        let a: Vec<u64> = (0..n as u64).map(|i| i % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 3) % q).collect();
        let s = pool.ma(&a, &b, q);
        for i in 0..n {
            assert_eq!(s[i], he_math::modops::add_mod(a[i], b[i], q));
        }
        let m = pool.mm(&a, &b, q);
        for i in 0..n {
            assert_eq!(m[i], he_math::modops::mul_mod(a[i], b[i], q));
        }
    }

    #[test]
    fn poly_mul_matches_schoolbook() {
        let n = 32;
        let q = q(n);
        let mut pool = OperatorPool::new(n, 8, 3);
        let a: Vec<u64> = (0..n as u64).map(|i| (i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * i + 2) % q).collect();
        assert_eq!(
            pool.poly_mul(&a, &b, q),
            he_ntt::naive::negacyclic_mul_schoolbook(&a, &b, q)
        );
    }

    #[test]
    fn usage_counters_accumulate_across_operations() {
        let n = 64;
        let q = q(n);
        let mut pool = OperatorPool::new(n, 8, 3);
        let a = vec![1u64; n];
        let _ = pool.ma(&a, &a, q);
        let _ = pool.mm(&a, &a, q);
        let _ = pool.automorphism(&a, 3, q);
        let u = pool.usage();
        assert_eq!(u.ma, 64);
        assert_eq!(u.mm, 64);
        assert_eq!(u.auto, 64);
        // SBT serves both MM and automorphism sign logic.
        assert_eq!(u.sbt, 128);
        pool.reset_usage();
        assert_eq!(pool.usage(), OperatorCounts::ZERO);
    }

    #[test]
    fn ntt_usage_counts_fused_phases() {
        let n = 64; // log2 = 6, k = 3 → 2 fused phases
        let q = q(n);
        let mut pool = OperatorPool::new(n, 8, 3);
        let mut d = vec![1u64; n];
        pool.ntt(&mut d, q);
        assert_eq!(pool.usage().ntt, 64 * 2);
    }

    #[test]
    fn tables_are_cached_per_prime() {
        let n = 32;
        let mut pool = OperatorPool::new(n, 8, 3);
        let primes = he_math::prime::ntt_prime_chain(28, 2 * n as u64, 2);
        let mut d = vec![1u64; n];
        pool.ntt(&mut d, primes[0]);
        pool.ntt(&mut d, primes[1]);
        pool.ntt(&mut d, primes[0]);
        assert_eq!(pool.tables.len(), 2);
    }
}
