//! Operation → operator decomposition (paper §II-A, Table I, Fig. 7).
//!
//! Each CKKS basic operation is expressed as element-level counts of the
//! five operators, parameterised by the ring degree `N`, the number of
//! live RNS components `L+1`, and the special-basis size `k`. The counting
//! conventions follow the hardware dataflow (Fig. 2):
//!
//! * Ciphertexts are resident in **evaluation (NTT) form**, so HAdd is pure
//!   MA and PMult is pure MM (exactly Fig. 7's composition).
//! * Keyswitch pays the NTT/INTT traffic: INTT of the switched polynomial,
//!   per-digit lifts re-transformed into the extended basis, the key
//!   products, and the Moddown conversions (Eq. 1–3).
//! * One SBT is issued per MM and per NTT butterfly stage-element — the
//!   shared-reduction accounting that motivates the SBT core.

use crate::operator::{Operator, OperatorCounts};

/// Ring/chain parameters an operation executes under.
///
/// # Examples
///
/// ```
/// use poseidon_core::{BasicOp, OpParams};
/// let p = OpParams::new(1 << 13, 6, 1);
/// let c = BasicOp::HAdd.operator_counts(&p);
/// assert!(c.ma > 0 && c.mm == 0); // HAdd is pure MA (Fig. 7)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpParams {
    /// Ring degree `N`.
    pub n: usize,
    /// Live RNS components (`level + 1`).
    pub components: usize,
    /// Special-basis size `k` (keyswitching).
    pub special: usize,
    /// Keyswitching digit count. The paper's classic procedure (Eq. 1–3)
    /// extends the whole polynomial at once — `dnum = 1`; the software
    /// library's per-prime decomposition corresponds to `dnum = components`.
    pub dnum: usize,
}

impl OpParams {
    /// Creates parameters with the paper's single-digit keyswitching.
    ///
    /// # Panics
    ///
    /// Panics on a zero field or non-power-of-two `n`.
    pub fn new(n: usize, components: usize, special: usize) -> Self {
        Self::with_dnum(n, components, special, 1)
    }

    /// Creates parameters with an explicit keyswitching digit count.
    ///
    /// # Panics
    ///
    /// Panics on a zero field, non-power-of-two `n`, or `dnum` exceeding
    /// `components`.
    pub fn with_dnum(n: usize, components: usize, special: usize, dnum: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 8,
            "n must be a power of two ≥ 8"
        );
        assert!(components >= 1, "at least one RNS component");
        assert!(special >= 1, "at least one special prime");
        assert!(
            dnum >= 1 && dnum <= components,
            "dnum must be in 1..=components"
        );
        Self {
            n,
            components,
            special,
            dnum,
        }
    }

    fn n64(&self) -> u64 {
        self.n as u64
    }

    fn l(&self) -> u64 {
        self.components as u64
    }

    fn k(&self) -> u64 {
        self.special as u64
    }

    /// Element count of one full NTT at this degree: `N·log2(N)` butterfly
    /// element-phases.
    pub fn ntt_elems(&self) -> u64 {
        self.n64() * self.n.trailing_zeros() as u64
    }
}

/// A CKKS basic operation (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicOp {
    /// Homomorphic addition (ciphertext + ciphertext).
    HAdd,
    /// Plaintext multiplication.
    PMult,
    /// Ciphertext multiplication with relinearisation.
    CMult,
    /// Rescale by the last chain prime.
    Rescale,
    /// Keyswitch of one polynomial (the primitive inside CMult/Rotation).
    Keyswitch,
    /// Slot rotation: automorphism + keyswitch.
    Rotation,
    /// Modup: basis extension `Q → Q ∪ P` (Eq. 3).
    Modup,
    /// Moddown: scaled reduction `Q ∪ P → Q` (Eq. 2).
    Moddown,
}

impl BasicOp {
    /// Operations in the order the paper's tables list them.
    pub const ALL: [BasicOp; 8] = [
        BasicOp::Modup,
        BasicOp::Moddown,
        BasicOp::HAdd,
        BasicOp::PMult,
        BasicOp::CMult,
        BasicOp::Rotation,
        BasicOp::Keyswitch,
        BasicOp::Rescale,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            BasicOp::HAdd => "HAdd",
            BasicOp::PMult => "PMult",
            BasicOp::CMult => "CMult",
            BasicOp::Rescale => "Rescale",
            BasicOp::Keyswitch => "Keyswitch",
            BasicOp::Rotation => "Rotation",
            BasicOp::Modup => "Modup",
            BasicOp::Moddown => "Moddown",
        }
    }

    /// Element-level operator counts for this operation under `p`.
    pub fn operator_counts(&self, p: &OpParams) -> OperatorCounts {
        let n = p.n64();
        let l = p.l();
        let k = p.k();
        let ntt1 = p.ntt_elems(); // one transform
        match self {
            // Two components, element-wise adds across all live primes.
            BasicOp::HAdd => OperatorCounts {
                ma: 2 * l * n,
                ..OperatorCounts::ZERO
            },
            // Two components, element-wise multiplies (eval-resident).
            BasicOp::PMult => with_sbt(OperatorCounts {
                mm: 2 * l * n,
                ..OperatorCounts::ZERO
            }),
            // d0,d1,d2 tensor (4 MM + 1 MA vectors) + relinearise d2 +
            // folding the switched pair back in (2 MA vectors).
            BasicOp::CMult => {
                let tensor = OperatorCounts {
                    mm: 4 * l * n,
                    ma: l * n,
                    ..OperatorCounts::ZERO
                };
                let fold = OperatorCounts {
                    ma: 2 * l * n,
                    ..OperatorCounts::ZERO
                };
                with_sbt(tensor) + BasicOp::Keyswitch.operator_counts(p) + fold
            }
            // INTT both components, subtract + scale on l−1 primes, NTT
            // back (counted even at l = 1 as the boundary transform pair).
            BasicOp::Rescale => {
                let lm1 = l.saturating_sub(1).max(1);
                with_sbt(OperatorCounts {
                    ntt: 2 * ntt1 * l + 2 * ntt1 * lm1,
                    ma: 2 * lm1 * n,
                    mm: 2 * lm1 * n,
                    ..OperatorCounts::ZERO
                })
            }
            // INTT the switched poly (l primes); per digit: basis-extend +
            // NTT in the extended basis (l+k primes), two key MM vectors;
            // accumulate MA; then Moddown for both output components.
            BasicOp::Keyswitch => {
                let d = p.dnum as u64;
                let per_digit = OperatorCounts {
                    ntt: (l + k) * ntt1,
                    mm: 2 * (l + k) * n,
                    ma: 2 * (l + k) * n,
                    ..OperatorCounts::ZERO
                };
                let intt_in = OperatorCounts {
                    ntt: l * ntt1,
                    ..OperatorCounts::ZERO
                };
                with_sbt(intt_in + per_digit * d) + BasicOp::Moddown.operator_counts(p) * 2
            }
            // Automorphism on both components + the keyswitch.
            BasicOp::Rotation => {
                let auto = OperatorCounts {
                    auto: 2 * l * n,
                    // One sign comparison/reduction per mapped element.
                    sbt: 2 * l * n,
                    ..OperatorCounts::ZERO
                };
                auto + BasicOp::Keyswitch.operator_counts(p)
            }
            // RNSconv Q → P (Eq. 1): per source prime one scalar MM vector,
            // per target prime an accumulate (MM+MA); plus the transforms.
            BasicOp::Modup => with_sbt(OperatorCounts {
                ntt: k * ntt1 + l * ntt1,
                mm: l * n + l * k * n,
                ma: l * k * n,
                ..OperatorCounts::ZERO
            }),
            // Eq. 2: RNSconv P → Q, subtract, scale by P⁻¹, retransform.
            BasicOp::Moddown => with_sbt(OperatorCounts {
                ntt: (l + k) * ntt1,
                mm: k * n + k * l * n + l * n,
                ma: k * l * n + l * n,
                ..OperatorCounts::ZERO
            }),
        }
    }

    /// The Table I row: which operators this operation exercises.
    pub fn uses(&self, p: &OpParams) -> Vec<(Operator, bool)> {
        let c = self.operator_counts(p);
        Operator::ALL.iter().map(|&op| (op, c.uses(op))).collect()
    }
}

/// Adds the SBT issue count: one shared Barrett reduction per MM and per
/// NTT element-phase (the sharing the paper's SBT core exploits).
fn with_sbt(mut c: OperatorCounts) -> OperatorCounts {
    c.sbt += c.mm + c.ntt;
    c
}

/// A benchmark-level operation stream: basic operations with multiplicity,
/// each tagged with the component count it executes at.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpTrace {
    entries: Vec<(BasicOp, OpParams, u64)>,
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `count` instances of `op` under `params`.
    pub fn push(&mut self, op: BasicOp, params: OpParams, count: u64) {
        if count > 0 {
            self.entries.push((op, params, count));
        }
    }

    /// The raw entries.
    pub fn entries(&self) -> &[(BasicOp, OpParams, u64)] {
        &self.entries
    }

    /// Total operator counts over the whole trace.
    pub fn operator_counts(&self) -> OperatorCounts {
        self.entries
            .iter()
            .fold(OperatorCounts::ZERO, |acc, (op, p, c)| {
                acc + op.operator_counts(p) * *c
            })
    }

    /// Per-basic-operation totals (for Fig. 8-style breakdowns).
    pub fn per_op_counts(&self) -> Vec<(BasicOp, OperatorCounts)> {
        let mut agg: Vec<(BasicOp, OperatorCounts)> = Vec::new();
        for (op, p, c) in &self.entries {
            let counts = op.operator_counts(p) * *c;
            match agg.iter_mut().find(|(o, _)| o == op) {
                Some((_, acc)) => *acc += counts,
                None => agg.push((*op, counts)),
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> OpParams {
        OpParams::new(1 << 13, 6, 1)
    }

    #[test]
    fn table1_checkmark_pattern() {
        // Fig. 7 / Table I: HAdd is MA-only; PMult is MM-only (plus its
        // shared reductions); Rotation uses all operators.
        let p = p();
        let hadd = BasicOp::HAdd.operator_counts(&p);
        assert!(hadd.uses(Operator::Ma));
        assert!(
            !hadd.uses(Operator::Mm)
                && !hadd.uses(Operator::Ntt)
                && !hadd.uses(Operator::Automorphism)
        );

        let pmult = BasicOp::PMult.operator_counts(&p);
        assert!(pmult.uses(Operator::Mm) && pmult.uses(Operator::Sbt));
        assert!(!pmult.uses(Operator::Ma) && !pmult.uses(Operator::Automorphism));

        let rot = BasicOp::Rotation.operator_counts(&p);
        for op in Operator::ALL {
            assert!(rot.uses(op), "Rotation must use {op}");
        }

        let ks = BasicOp::Keyswitch.operator_counts(&p);
        assert!(ks.uses(Operator::Ntt) && ks.uses(Operator::Mm) && ks.uses(Operator::Ma));
        assert!(!ks.uses(Operator::Automorphism));
    }

    #[test]
    fn keyswitch_is_ntt_dominated() {
        // Fig. 9: NTT takes the largest share of Keyswitch time.
        let c = BasicOp::Keyswitch.operator_counts(&p());
        assert!(c.ntt > c.mm && c.ntt > c.ma, "{c:?}");
    }

    #[test]
    fn cmult_contains_keyswitch() {
        let p = p();
        let cm = BasicOp::CMult.operator_counts(&p);
        let ks = BasicOp::Keyswitch.operator_counts(&p);
        for op in Operator::ALL {
            assert!(cm.get(op) >= ks.get(op), "{op}");
        }
    }

    #[test]
    fn counts_scale_linearly_with_components() {
        let p2 = OpParams::new(1 << 13, 2, 1);
        let p4 = OpParams::new(1 << 13, 4, 1);
        let h2 = BasicOp::HAdd.operator_counts(&p2);
        let h4 = BasicOp::HAdd.operator_counts(&p4);
        assert_eq!(h4.ma, 2 * h2.ma);
    }

    #[test]
    fn trace_aggregates() {
        let p = p();
        let mut t = OpTrace::new();
        t.push(BasicOp::HAdd, p, 3);
        t.push(BasicOp::PMult, p, 2);
        t.push(BasicOp::HAdd, p, 1);
        let total = t.operator_counts();
        assert_eq!(total.ma, BasicOp::HAdd.operator_counts(&p).ma * 4);
        let per = t.per_op_counts();
        assert_eq!(per.len(), 2);
    }

    #[test]
    fn sbt_matches_mm_plus_ntt_for_pmult() {
        let c = BasicOp::PMult.operator_counts(&p());
        assert_eq!(c.sbt, c.mm + c.ntt);
    }
}
