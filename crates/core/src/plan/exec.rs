//! Plan executor: replays an optimized schedule on any
//! [`HomomorphicOps`] backend.
//!
//! The executor owns a slot table (one `Option<Ciphertext>` per SSA
//! value), binds the caller's input ciphertexts to the graph's `Input`
//! nodes positionally, walks the schedule, and frees each value's slot
//! at its last use (the plan's `release` sets) — so peak ciphertext
//! residency matches the scheduler's `max_live` accounting.

use he_ckks::cipher::Ciphertext;
use he_ckks::error::EvalError;
use he_ckks::keys::KeySet;

use crate::ops::HomomorphicOps;
use crate::plan::graph::{GraphOp, ValueId};
use crate::plan::passes::Plan;

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// One ciphertext per graph output, in output-marking order.
    pub outputs: Vec<Ciphertext>,
    /// Schedule steps replayed.
    pub steps: usize,
    /// Peak number of simultaneously live ciphertext slots.
    pub max_live: usize,
}

fn slot(slots: &[Option<Ciphertext>], v: ValueId) -> Result<&Ciphertext, EvalError> {
    slots[v.index()].as_ref().ok_or_else(|| {
        EvalError::InvalidParams(format!("value {} used before production", v.index()))
    })
}

/// Replays `plan` on `backend` with the given graph inputs.
///
/// # Errors
///
/// `EvalError::InvalidParams` when the input count doesn't match the
/// graph, otherwise whatever the backend operation returns (missing
/// rotation keys, rescale at level 0, …).
pub fn execute<B: HomomorphicOps>(
    plan: &Plan,
    backend: &mut B,
    inputs: &[Ciphertext],
    keys: &KeySet,
) -> Result<ExecOutcome, EvalError> {
    let g = &plan.graph;
    if inputs.len() != g.inputs().len() {
        return Err(EvalError::InvalidParams(format!(
            "plan expects {} input ciphertexts, got {}",
            g.inputs().len(),
            inputs.len()
        )));
    }
    let mut slots: Vec<Option<Ciphertext>> = vec![None; g.values().len()];
    let mut live = 0usize;
    let mut max_live = 0usize;

    for (step, &nid) in plan.schedule.iter().enumerate() {
        let node = g.node(nid);
        match &node.op {
            GraphOp::RotateMany { steps } => {
                let outs = backend.try_rotate_many(slot(&slots, node.inputs[0])?, steps, keys)?;
                debug_assert_eq!(outs.len(), node.outputs.len());
                for (o, ct) in node.outputs.iter().zip(outs) {
                    slots[o.index()] = Some(ct);
                    live += 1;
                }
            }
            op => {
                let out = match op {
                    GraphOp::Input { slot } => inputs[*slot].clone(),
                    GraphOp::Add => backend
                        .try_add(slot(&slots, node.inputs[0])?, slot(&slots, node.inputs[1])?)?,
                    GraphOp::Sub => backend
                        .try_sub(slot(&slots, node.inputs[0])?, slot(&slots, node.inputs[1])?)?,
                    GraphOp::AddPlain { pt } => backend
                        .try_add_plain(slot(&slots, node.inputs[0])?, &g.plaintexts()[*pt])?,
                    GraphOp::MulPlain { pt } => backend
                        .try_mul_plain(slot(&slots, node.inputs[0])?, &g.plaintexts()[*pt])?,
                    GraphOp::Mul => backend.try_mul(
                        slot(&slots, node.inputs[0])?,
                        slot(&slots, node.inputs[1])?,
                        keys,
                    )?,
                    GraphOp::Square => backend.try_square(slot(&slots, node.inputs[0])?, keys)?,
                    GraphOp::Rescale => backend.try_rescale(slot(&slots, node.inputs[0])?)?,
                    GraphOp::DropToLevel { level } => {
                        backend.try_drop_to_level(slot(&slots, node.inputs[0])?, *level)?
                    }
                    GraphOp::Rotate { steps } => {
                        backend.try_rotate(slot(&slots, node.inputs[0])?, *steps, keys)?
                    }
                    GraphOp::Conjugate => {
                        backend.try_conjugate(slot(&slots, node.inputs[0])?, keys)?
                    }
                    GraphOp::RotateMany { .. } => unreachable!(),
                };
                slots[node.outputs[0].index()] = Some(out);
                live += 1;
            }
        }
        max_live = max_live.max(live);
        for v in &plan.release[step] {
            if slots[v.index()].take().is_some() {
                live -= 1;
            }
        }
    }

    let mut outputs = Vec::with_capacity(g.outputs().len());
    for &o in g.outputs() {
        let ct = slots[o.index()].clone().ok_or_else(|| {
            EvalError::InvalidParams(format!("graph output {} never produced", o.index()))
        })?;
        outputs.push(ct);
    }
    Ok(ExecOutcome {
        outputs,
        steps: plan.schedule.len(),
        max_live,
    })
}
