//! Plan executor: replays an optimized schedule on any
//! [`HomomorphicOps`] backend.
//!
//! The executor owns a slot table (one `Option<Ciphertext>` per SSA
//! value), binds the caller's input ciphertexts to the graph's `Input`
//! nodes positionally, walks the schedule, and frees each value's slot
//! at its last use (the plan's `release` sets) — so peak ciphertext
//! residency matches the scheduler's `max_live` accounting.
//!
//! Plans containing `Bootstrap` nodes (from the bootstrap-insertion
//! pass) need [`execute_with`] and a [`Bootstrapper`]: the executor
//! drops the operand to level 0, runs the refresh through
//! `HomomorphicOps::try_bootstrap`, and conforms the result to the
//! node's target level.

use he_ckks::bootstrap::Bootstrapper;
use he_ckks::cipher::Ciphertext;
use he_ckks::error::EvalError;
use he_ckks::keys::KeySet;

use crate::ops::HomomorphicOps;
use crate::plan::graph::{GraphOp, ValueId};
use crate::plan::passes::Plan;

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// One ciphertext per graph output, in output-marking order.
    pub outputs: Vec<Ciphertext>,
    /// Schedule steps replayed.
    pub steps: usize,
    /// Peak number of simultaneously live ciphertext slots.
    pub max_live: usize,
}

fn slot(slots: &[Option<Ciphertext>], v: ValueId) -> Result<&Ciphertext, EvalError> {
    slots[v.index()].as_ref().ok_or_else(|| {
        EvalError::InvalidParams(format!("value {} used before production", v.index()))
    })
}

/// Replays `plan` on `backend` with the given graph inputs.
///
/// # Errors
///
/// `EvalError::InvalidParams` when the input count doesn't match the
/// graph, `EvalError::BootstrapUnavailable` when the plan contains a
/// `Bootstrap` node (use [`execute_with`]), otherwise whatever the
/// backend operation returns (missing rotation keys, rescale at level 0,
/// …).
pub fn execute<B: HomomorphicOps>(
    plan: &Plan,
    backend: &mut B,
    inputs: &[Ciphertext],
    keys: &KeySet,
) -> Result<ExecOutcome, EvalError> {
    execute_with(plan, backend, inputs, keys, None)
}

/// [`execute`] with an optional [`Bootstrapper`] for plans that refresh
/// ciphertexts. A `Bootstrap { target_level }` node drops its operand to
/// level 0, runs the backend's bootstrap pipeline, and drops the
/// refreshed ciphertext to `target_level`.
///
/// # Errors
///
/// As [`execute`]; additionally `EvalError::LevelMismatch` when the
/// bootstrapper delivers a refreshed ciphertext *below* a node's target
/// level.
pub fn execute_with<B: HomomorphicOps>(
    plan: &Plan,
    backend: &mut B,
    inputs: &[Ciphertext],
    keys: &KeySet,
    bootstrapper: Option<&Bootstrapper>,
) -> Result<ExecOutcome, EvalError> {
    let g = &plan.graph;
    if inputs.len() != g.inputs().len() {
        return Err(EvalError::InvalidParams(format!(
            "plan expects {} input ciphertexts, got {}",
            g.inputs().len(),
            inputs.len()
        )));
    }
    let mut slots: Vec<Option<Ciphertext>> = vec![None; g.values().len()];
    let mut live = 0usize;
    let mut max_live = 0usize;

    for (step, &nid) in plan.schedule.iter().enumerate() {
        let node = g.node(nid);
        match &node.op {
            GraphOp::RotateMany { steps } => {
                let outs = backend.try_rotate_many(slot(&slots, node.inputs[0])?, steps, keys)?;
                debug_assert_eq!(outs.len(), node.outputs.len());
                for (o, ct) in node.outputs.iter().zip(outs) {
                    slots[o.index()] = Some(ct);
                    live += 1;
                }
            }
            op => {
                let out = match op {
                    GraphOp::Input { slot } => inputs[*slot].clone(),
                    GraphOp::Add => backend
                        .try_add(slot(&slots, node.inputs[0])?, slot(&slots, node.inputs[1])?)?,
                    GraphOp::Sub => backend
                        .try_sub(slot(&slots, node.inputs[0])?, slot(&slots, node.inputs[1])?)?,
                    GraphOp::AddPlain { pt } => backend
                        .try_add_plain(slot(&slots, node.inputs[0])?, &g.plaintexts()[*pt])?,
                    GraphOp::MulPlain { pt } => backend
                        .try_mul_plain(slot(&slots, node.inputs[0])?, &g.plaintexts()[*pt])?,
                    GraphOp::Mul => backend.try_mul(
                        slot(&slots, node.inputs[0])?,
                        slot(&slots, node.inputs[1])?,
                        keys,
                    )?,
                    GraphOp::Square => backend.try_square(slot(&slots, node.inputs[0])?, keys)?,
                    GraphOp::Rescale => backend.try_rescale(slot(&slots, node.inputs[0])?)?,
                    GraphOp::DropToLevel { level } => {
                        backend.try_drop_to_level(slot(&slots, node.inputs[0])?, *level)?
                    }
                    GraphOp::Rotate { steps } => {
                        backend.try_rotate(slot(&slots, node.inputs[0])?, *steps, keys)?
                    }
                    GraphOp::Conjugate => {
                        backend.try_conjugate(slot(&slots, node.inputs[0])?, keys)?
                    }
                    GraphOp::Bootstrap { target_level } => {
                        let bs = bootstrapper.ok_or(EvalError::BootstrapUnavailable)?;
                        let a = slot(&slots, node.inputs[0])?;
                        // ModRaise needs a level-0 operand.
                        let floored = if a.level() > 0 {
                            backend.try_drop_to_level(a, 0)?
                        } else {
                            a.clone()
                        };
                        let refreshed = backend.try_bootstrap(&floored, bs, keys)?;
                        if refreshed.level() < *target_level {
                            return Err(EvalError::LevelMismatch {
                                a: refreshed.level(),
                                b: *target_level,
                            });
                        }
                        if refreshed.level() > *target_level {
                            backend.try_drop_to_level(&refreshed, *target_level)?
                        } else {
                            refreshed
                        }
                    }
                    GraphOp::RotateMany { .. } => unreachable!(),
                };
                slots[node.outputs[0].index()] = Some(out);
                live += 1;
            }
        }
        max_live = max_live.max(live);
        for v in &plan.release[step] {
            if slots[v.index()].take().is_some() {
                live -= 1;
            }
        }
    }

    let mut outputs = Vec::with_capacity(g.outputs().len());
    for &o in g.outputs() {
        let ct = slots[o.index()].clone().ok_or_else(|| {
            EvalError::InvalidParams(format!("graph output {} never produced", o.index()))
        })?;
        outputs.push(ct);
    }
    Ok(ExecOutcome {
        outputs,
        steps: plan.schedule.len(),
        max_live,
    })
}
