//! `EvalGraph` — the SSA dataflow IR the planner optimises.
//!
//! A graph is a sequence of nodes, each consuming and producing *values*
//! (SSA ids standing for ciphertexts). Every value records its producer,
//! its consumers, and level/scale metadata, so the optimizer passes can
//! reason about dataflow (who else rotates this value?) and noise (is a
//! rescale legal and profitable here?) without touching ciphertext data.
//!
//! Graphs come from two front ends:
//!
//! * [`GraphRecorder`] — drives graph capture inside
//!   [`RecordingEvaluator`](crate::recorder::RecordingEvaluator): each
//!   executed operation resolves its operand ciphertexts to value ids by
//!   digest and appends a node, so *running a program* records its true
//!   dataflow, not just a flat operation count.
//! * [`compile_trace`](crate::plan::compile_trace) — lowers a flat
//!   `.pos` [`OpTrace`](crate::decompose::OpTrace) into an executable
//!   graph.

use std::collections::HashMap;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::integrity::digest_ciphertext;

/// Identifier of an SSA value (a ciphertext produced once, consumed
/// anywhere later).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) usize);

impl ValueId {
    /// The raw index (stable within one graph).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Identifier of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable within one graph).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The operation a node performs. Plaintext operands are stored in the
/// graph's side table and referenced by index, keeping nodes cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// Graph input: binds the `slot`-th ciphertext the executor is given.
    Input {
        /// Position in the executor's input slice.
        slot: usize,
    },
    /// HAdd, ct+ct.
    Add,
    /// Subtraction (HAdd cost class).
    Sub,
    /// HAdd, ct+pt.
    AddPlain {
        /// Index into the plaintext side table.
        pt: usize,
    },
    /// PMult, ct·pt.
    MulPlain {
        /// Index into the plaintext side table.
        pt: usize,
    },
    /// CMult with relinearisation.
    Mul,
    /// Squaring (CMult cost class).
    Square,
    /// Rescale by the last live prime.
    Rescale,
    /// Level drop by modulus truncation.
    DropToLevel {
        /// Target level.
        level: usize,
    },
    /// Slot rotation.
    Rotate {
        /// Rotation amount.
        steps: i64,
    },
    /// Slot conjugation.
    Conjugate,
    /// Planner-introduced hoisted batch: all rotations of one source pay
    /// the keyswitch digit lift once (`try_rotate_many`). One output per
    /// step, in order.
    RotateMany {
        /// Rotation amounts, one per output.
        steps: Vec<i64>,
    },
    /// Planner-introduced ciphertext refresh: drop the operand to level 0,
    /// run the full bootstrapping pipeline, and conform the refreshed
    /// ciphertext to `target_level`. Inserted by the bootstrap-insertion
    /// pass when a chain exhausts the modulus; executed through
    /// `HomomorphicOps::try_bootstrap`.
    Bootstrap {
        /// Level the refreshed ciphertext is dropped to (must not exceed
        /// what the executing `Bootstrapper` can deliver).
        target_level: usize,
    },
}

impl GraphOp {
    /// Short lowercase name for display.
    pub fn name(&self) -> &'static str {
        match self {
            GraphOp::Input { .. } => "input",
            GraphOp::Add => "add",
            GraphOp::Sub => "sub",
            GraphOp::AddPlain { .. } => "add_plain",
            GraphOp::MulPlain { .. } => "mul_plain",
            GraphOp::Mul => "mul",
            GraphOp::Square => "square",
            GraphOp::Rescale => "rescale",
            GraphOp::DropToLevel { .. } => "drop_to_level",
            GraphOp::Rotate { .. } => "rotate",
            GraphOp::Conjugate => "conjugate",
            GraphOp::RotateMany { .. } => "rotate_many",
            GraphOp::Bootstrap { .. } => "bootstrap",
        }
    }
}

/// One operation in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node computes.
    pub op: GraphOp,
    /// Consumed values (operand order matters).
    pub inputs: Vec<ValueId>,
    /// Produced values (one, except `RotateMany`).
    pub outputs: Vec<ValueId>,
    pub(crate) dead: bool,
}

impl Node {
    /// Whether a pass tombstoned this node.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// Metadata of one SSA value.
#[derive(Debug, Clone)]
pub struct ValueInfo {
    /// The node that produces this value.
    pub producer: NodeId,
    /// Every node that consumes it (duplicates allowed when a node uses
    /// the same value twice).
    pub consumers: Vec<NodeId>,
    /// Ciphertext level (live scale primes).
    pub level: usize,
    /// log2 of the tracked scale — the noise-accounting view the rescale
    /// pass matches on.
    pub scale_bits: f64,
    pub(crate) dead: bool,
}

impl ValueInfo {
    /// Whether a pass tombstoned this value.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// The SSA dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct EvalGraph {
    nodes: Vec<Node>,
    values: Vec<ValueInfo>,
    plaintexts: Vec<Plaintext>,
    inputs: Vec<ValueId>,
    outputs: Vec<ValueId>,
    /// Nominal bits removed by one rescale (≈ log2 of a scale prime);
    /// used for metadata propagation where the exact dropped prime is not
    /// known at planning time.
    rescale_bits: f64,
}

impl EvalGraph {
    /// An empty graph. `rescale_bits` is the nominal log2 of a scale
    /// prime (e.g. `params.scale_prime_bits`).
    pub fn new(rescale_bits: f64) -> Self {
        Self {
            rescale_bits,
            ..Self::default()
        }
    }

    /// Nominal bits one rescale removes.
    pub fn rescale_bits(&self) -> f64 {
        self.rescale_bits
    }

    /// All nodes (including dead ones — check [`Node::is_dead`] or use
    /// [`live_nodes`](Self::live_nodes)).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All value records.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// The plaintext side table.
    pub fn plaintexts(&self) -> &[Plaintext] {
        &self.plaintexts
    }

    /// Graph input values, in executor binding order.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Graph output values.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Value lookup.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.0]
    }

    /// Iterator over live (not eliminated) node ids in creation order —
    /// the *unplanned* program order.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| NodeId(i))
    }

    /// Number of live nodes.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Number of live nodes matching a predicate on the op.
    pub fn count_ops(&self, f: impl Fn(&GraphOp) -> bool) -> usize {
        self.nodes.iter().filter(|n| !n.dead && f(&n.op)).count()
    }

    /// Every rotation step any live node needs, deduplicated and sorted —
    /// the key material an executor run requires.
    pub fn required_rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = Vec::new();
        for n in self.nodes.iter().filter(|n| !n.dead) {
            match &n.op {
                GraphOp::Rotate { steps: s } => steps.push(*s),
                GraphOp::RotateMany { steps: ss } => steps.extend(ss),
                _ => {}
            }
        }
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Whether any live node conjugates (needs the conjugation key).
    pub fn needs_conjugation_key(&self) -> bool {
        self.count_ops(|op| matches!(op, GraphOp::Conjugate)) > 0
    }

    // ---- construction -----------------------------------------------------

    fn push_value(&mut self, producer: NodeId, level: usize, scale_bits: f64) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(ValueInfo {
            producer,
            consumers: Vec::new(),
            level,
            scale_bits,
            dead: false,
        });
        id
    }

    fn push_node(
        &mut self,
        op: GraphOp,
        inputs: Vec<ValueId>,
        level: usize,
        scale_bits: f64,
    ) -> ValueId {
        let nid = NodeId(self.nodes.len());
        for &v in &inputs {
            self.values[v.0].consumers.push(nid);
        }
        self.nodes.push(Node {
            op,
            inputs,
            outputs: Vec::new(),
            dead: false,
        });
        let out = self.push_value(nid, level, scale_bits);
        self.nodes[nid.0].outputs.push(out);
        out
    }

    /// Adds a graph input at the given level and scale (log2).
    pub fn input(&mut self, level: usize, scale_bits: f64) -> ValueId {
        let slot = self.inputs.len();
        let out = self.push_node(GraphOp::Input { slot }, Vec::new(), level, scale_bits);
        self.inputs.push(out);
        out
    }

    fn binary_meta(&self, a: ValueId, b: ValueId) -> (usize, f64) {
        let (va, vb) = (&self.values[a.0], &self.values[b.0]);
        (va.level.min(vb.level), va.scale_bits.max(vb.scale_bits))
    }

    /// ct + ct.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let (level, sb) = self.binary_meta(a, b);
        self.push_node(GraphOp::Add, vec![a, b], level, sb)
    }

    /// ct − ct.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let (level, sb) = self.binary_meta(a, b);
        self.push_node(GraphOp::Sub, vec![a, b], level, sb)
    }

    /// Interns a plaintext in the side table.
    pub fn intern_plaintext(&mut self, pt: Plaintext) -> usize {
        self.plaintexts.push(pt);
        self.plaintexts.len() - 1
    }

    /// ct + pt.
    pub fn add_plain(&mut self, a: ValueId, pt: usize) -> ValueId {
        let (level, sb) = (self.values[a.0].level, self.values[a.0].scale_bits);
        self.push_node(GraphOp::AddPlain { pt }, vec![a], level, sb)
    }

    /// ct · pt (scale multiplies).
    pub fn mul_plain(&mut self, a: ValueId, pt: usize) -> ValueId {
        let pt_bits = self.plaintexts[pt].scale().log2();
        let (level, sb) = (self.values[a.0].level, self.values[a.0].scale_bits);
        self.push_node(GraphOp::MulPlain { pt }, vec![a], level, sb + pt_bits)
    }

    /// ct · ct with relinearisation (scales multiply).
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let (va, vb) = (&self.values[a.0], &self.values[b.0]);
        let (level, sb) = (va.level.min(vb.level), va.scale_bits + vb.scale_bits);
        self.push_node(GraphOp::Mul, vec![a, b], level, sb)
    }

    /// ct² (scale squares).
    pub fn square(&mut self, a: ValueId) -> ValueId {
        let (level, sb) = (self.values[a.0].level, self.values[a.0].scale_bits);
        self.push_node(GraphOp::Square, vec![a], level, 2.0 * sb)
    }

    /// Rescale: drops a level, removes ≈[`rescale_bits`](Self::rescale_bits).
    ///
    /// # Panics
    ///
    /// Panics when the value is already at level 0.
    pub fn rescale(&mut self, a: ValueId) -> ValueId {
        let v = &self.values[a.0];
        assert!(v.level > 0, "cannot rescale at level 0");
        let (level, sb) = (v.level - 1, v.scale_bits - self.rescale_bits);
        self.push_node(GraphOp::Rescale, vec![a], level, sb)
    }

    /// Level drop by truncation (no scale change).
    ///
    /// # Panics
    ///
    /// Panics when `level` exceeds the value's current level.
    pub fn drop_to_level(&mut self, a: ValueId, level: usize) -> ValueId {
        let v = &self.values[a.0];
        assert!(level <= v.level, "cannot raise a level by truncation");
        let sb = v.scale_bits;
        self.push_node(GraphOp::DropToLevel { level }, vec![a], level, sb)
    }

    /// Slot rotation.
    pub fn rotate(&mut self, a: ValueId, steps: i64) -> ValueId {
        let (level, sb) = (self.values[a.0].level, self.values[a.0].scale_bits);
        self.push_node(GraphOp::Rotate { steps }, vec![a], level, sb)
    }

    /// Slot conjugation.
    pub fn conjugate(&mut self, a: ValueId) -> ValueId {
        let (level, sb) = (self.values[a.0].level, self.values[a.0].scale_bits);
        self.push_node(GraphOp::Conjugate, vec![a], level, sb)
    }

    /// Ciphertext refresh to `target_level` at the nominal default scale
    /// (≈ [`rescale_bits`](Self::rescale_bits)). The executor drops the
    /// operand to level 0 and runs the bootstrapping pipeline.
    pub fn bootstrap(&mut self, a: ValueId, target_level: usize) -> ValueId {
        let sb = self.rescale_bits;
        self.push_node(
            GraphOp::Bootstrap { target_level },
            vec![a],
            target_level,
            sb,
        )
    }

    /// Marks a value as a graph output (idempotent). Outputs survive
    /// dead-value elimination and are returned by the executor in marking
    /// order.
    pub fn mark_output(&mut self, v: ValueId) {
        if !self.outputs.contains(&v) {
            self.outputs.push(v);
        }
    }

    /// Overrides a value's tracked metadata (used by the recorder, which
    /// knows the *actual* level and scale of the ciphertext it captured).
    pub(crate) fn set_value_meta(&mut self, v: ValueId, level: usize, scale_bits: f64) {
        self.values[v.0].level = level;
        self.values[v.0].scale_bits = scale_bits;
    }

    // ---- pass support -----------------------------------------------------

    pub(crate) fn kill_node(&mut self, n: NodeId) {
        self.nodes[n.0].dead = true;
    }

    pub(crate) fn kill_value(&mut self, v: ValueId) {
        self.values[v.0].dead = true;
    }

    /// Adds `consumer` to `v`'s consumer list (pass rewires that retarget
    /// an existing node onto a new operand).
    pub(crate) fn subscribe(&mut self, v: ValueId, consumer: NodeId) {
        self.values[v.0].consumers.push(consumer);
    }

    /// Removes one occurrence of `consumer` from `v`'s consumer list.
    pub(crate) fn unsubscribe(&mut self, v: ValueId, consumer: NodeId) {
        let list = &mut self.values[v.0].consumers;
        if let Some(pos) = list.iter().position(|&c| c == consumer) {
            list.remove(pos);
        }
    }

    /// Appends a node with explicit outputs (pass rewrites that re-home
    /// existing value ids onto a new producer).
    pub(crate) fn push_raw_node(
        &mut self,
        op: GraphOp,
        inputs: Vec<ValueId>,
        outputs: Vec<ValueId>,
    ) -> NodeId {
        let nid = NodeId(self.nodes.len());
        for &v in &inputs {
            self.values[v.0].consumers.push(nid);
        }
        for &o in &outputs {
            self.values[o.0].producer = nid;
        }
        self.nodes.push(Node {
            op,
            inputs,
            outputs,
            dead: false,
        });
        nid
    }

    /// Creates a fresh value owned by `producer`.
    pub(crate) fn fresh_value(
        &mut self,
        producer: NodeId,
        level: usize,
        scale_bits: f64,
    ) -> ValueId {
        self.push_value(producer, level, scale_bits)
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Whether `v` is a graph output.
    pub fn is_output(&self, v: ValueId) -> bool {
        self.outputs.contains(&v)
    }

    /// Checks internal coherence: producers/consumers agree with node
    /// input/output lists, live nodes only reference live values, the
    /// graph is schedulable (acyclic). Used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.dead {
                continue;
            }
            for &v in &n.inputs {
                let info = &self.values[v.0];
                if info.dead {
                    return Err(format!("node {i} consumes dead value {}", v.0));
                }
                if !info.consumers.contains(&NodeId(i)) {
                    return Err(format!("value {} missing consumer {i}", v.0));
                }
            }
            for &o in &n.outputs {
                let info = &self.values[o.0];
                if info.dead {
                    return Err(format!("node {i} produces dead value {}", o.0));
                }
                if info.producer != NodeId(i) {
                    return Err(format!("value {} producer mismatch", o.0));
                }
            }
        }
        for &o in &self.outputs {
            if self.values[o.0].dead {
                return Err(format!("graph output {} is dead", o.0));
            }
        }
        // Acyclicity: every live node's inputs must be producible before
        // it in *some* order — Kahn count must cover all live nodes.
        let mut indeg: HashMap<usize, usize> = HashMap::new();
        for id in self.live_nodes() {
            indeg.insert(id.0, self.node(id).inputs.len());
        }
        let mut ready: Vec<usize> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&i, _)| i)
            .collect();
        let mut seen = 0usize;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &o in &self.nodes[i].outputs {
                for &c in &self.values[o.0].consumers {
                    if let Some(d) = indeg.get_mut(&c.0) {
                        *d -= 1;
                        if *d == 0 {
                            ready.push(c.0);
                        }
                    }
                }
            }
        }
        if seen != self.live_node_count() {
            return Err("graph contains a cycle".into());
        }
        Ok(())
    }
}

/// Incremental graph capture by ciphertext digest: resolves operand
/// ciphertexts to SSA ids (first sight of a ciphertext makes it a graph
/// input) and appends nodes as operations execute. The digest is FNV-1a
/// over the full residue data ([`digest_ciphertext`]), so two bit-equal
/// ciphertexts unify onto one value — re-recording a value refreshes the
/// mapping to the newest id.
#[derive(Debug, Default)]
pub struct GraphRecorder {
    graph: EvalGraph,
    by_digest: HashMap<u64, ValueId>,
    explicit_outputs: bool,
}

impl GraphRecorder {
    /// An empty recorder; `rescale_bits` as in [`EvalGraph::new`].
    pub fn new(rescale_bits: f64) -> Self {
        Self {
            graph: EvalGraph::new(rescale_bits),
            by_digest: HashMap::new(),
            explicit_outputs: false,
        }
    }

    /// Resolves a ciphertext to its value id, registering it as a fresh
    /// graph input when unseen.
    pub fn resolve(&mut self, ct: &Ciphertext) -> ValueId {
        let d = digest_ciphertext(ct);
        if let Some(&v) = self.by_digest.get(&d) {
            return v;
        }
        let v = self.graph.input(ct.level(), ct.scale().log2());
        self.by_digest.insert(d, v);
        v
    }

    fn register(&mut self, out_v: ValueId, out: &Ciphertext) {
        self.graph
            .set_value_meta(out_v, out.level(), out.scale().log2());
        self.by_digest.insert(digest_ciphertext(out), out_v);
    }

    /// Records a two-ciphertext operation.
    pub fn record_binary(&mut self, op: GraphOp, a: &Ciphertext, b: &Ciphertext, out: &Ciphertext) {
        let (va, vb) = (self.resolve(a), self.resolve(b));
        let out_v = match op {
            GraphOp::Add => self.graph.add(va, vb),
            GraphOp::Sub => self.graph.sub(va, vb),
            GraphOp::Mul => self.graph.mul(va, vb),
            other => panic!("not a binary ciphertext op: {}", other.name()),
        };
        self.register(out_v, out);
    }

    /// Records a one-ciphertext operation (plaintext operands are interned
    /// by the caller via [`intern_plaintext`](Self::intern_plaintext)).
    pub fn record_unary(&mut self, op: GraphOp, a: &Ciphertext, out: &Ciphertext) {
        let va = self.resolve(a);
        let out_v = match op {
            GraphOp::AddPlain { pt } => self.graph.add_plain(va, pt),
            GraphOp::MulPlain { pt } => self.graph.mul_plain(va, pt),
            GraphOp::Square => self.graph.square(va),
            GraphOp::Rescale => self.graph.rescale(va),
            GraphOp::DropToLevel { level } => self.graph.drop_to_level(va, level),
            GraphOp::Rotate { steps } => self.graph.rotate(va, steps),
            GraphOp::Conjugate => self.graph.conjugate(va),
            other => panic!("not a unary ciphertext op: {}", other.name()),
        };
        self.register(out_v, out);
    }

    /// Interns a plaintext operand.
    pub fn intern_plaintext(&mut self, pt: Plaintext) -> usize {
        self.graph.intern_plaintext(pt)
    }

    /// Marks a previously recorded ciphertext as a graph output. Returns
    /// `false` (and does nothing) for a ciphertext the recorder has never
    /// seen.
    pub fn mark_output(&mut self, ct: &Ciphertext) -> bool {
        let d = digest_ciphertext(ct);
        match self.by_digest.get(&d) {
            Some(&v) => {
                self.graph.mark_output(v);
                self.explicit_outputs = true;
                true
            }
            None => false,
        }
    }

    /// Finishes capture. Without explicit output marks, every leaf value
    /// (produced but never consumed) becomes an output, so a replay
    /// reproduces everything the recorded run kept.
    pub fn finish(mut self) -> EvalGraph {
        if !self.explicit_outputs {
            let leaves: Vec<ValueId> = self
                .graph
                .values()
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.dead && v.consumers.is_empty())
                .map(|(i, _)| ValueId(i))
                .filter(|&v| {
                    !matches!(
                        self.graph.node(self.graph.value(v).producer).op,
                        GraphOp::Input { .. }
                    )
                })
                .collect();
            for v in leaves {
                self.graph.mark_output(v);
            }
        }
        self.graph
    }

    /// A snapshot of the graph captured so far (leaf-output completion as
    /// in [`finish`](Self::finish), without consuming the recorder).
    pub fn snapshot(&self) -> EvalGraph {
        let clone = Self {
            graph: self.graph.clone(),
            by_digest: HashMap::new(),
            explicit_outputs: self.explicit_outputs,
        };
        clone.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> (EvalGraph, ValueId) {
        let mut g = EvalGraph::new(40.0);
        let a = g.input(3, 40.0);
        let b = g.input(3, 40.0);
        let s = g.add(a, b);
        let r = g.rotate(s, 1);
        g.mark_output(r);
        (g, s)
    }

    #[test]
    fn builder_tracks_dataflow() {
        let (g, s) = toy_graph();
        assert_eq!(g.inputs().len(), 2);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.value(s).consumers.len(), 1);
        assert_eq!(g.required_rotation_steps(), vec![1]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn metadata_propagates() {
        let mut g = EvalGraph::new(40.0);
        let a = g.input(3, 40.0);
        let sq = g.square(a);
        assert_eq!(g.value(sq).level, 3);
        assert!((g.value(sq).scale_bits - 80.0).abs() < 1e-9);
        let rs = g.rescale(sq);
        assert_eq!(g.value(rs).level, 2);
        assert!((g.value(rs).scale_bits - 40.0).abs() < 1e-9);
        let d = g.drop_to_level(rs, 1);
        assert_eq!(g.value(d).level, 1);
    }

    #[test]
    #[should_panic(expected = "level 0")]
    fn rescale_at_level_zero_is_rejected() {
        let mut g = EvalGraph::new(40.0);
        let a = g.input(0, 40.0);
        let _ = g.rescale(a);
    }

    #[test]
    fn validate_catches_broken_consumer_lists() {
        let (mut g, s) = toy_graph();
        g.values[s.0].consumers.clear();
        assert!(g.validate().is_err());
    }
}
