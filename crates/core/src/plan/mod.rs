//! The evaluation planner — the software analogue of Poseidon's HFAuto
//! operator decomposer.
//!
//! HFAuto turns high-level HE operators into basic-op schedules that
//! maximise keyswitch-digit reuse and on-chip residency. This module does
//! the same over recorded (or compiled) evaluation graphs:
//!
//! 1. **Capture** — [`RecordingEvaluator`] records the SSA dataflow of a
//!    real run ([`graph::EvalGraph`]), or [`compile_trace`] lowers a
//!    `.pos` op trace into one.
//! 2. **Optimize** — [`plan`] runs rescale sinking/fusion, cross-graph
//!    rotation hoisting into `rotate_many`, dead-value elimination, and
//!    live-range-aware scheduling ([`passes`]).
//! 3. **Execute** — [`execute`] replays the optimized schedule on any
//!    [`HomomorphicOps`] backend: the software evaluator, the
//!    accelerator-shaped [`PoseidonMachine`], or the recorder itself.
//!
//! Bit-preserving schedules (hoist + DVE + reorder only) reproduce the
//! unplanned outputs digest-identically on the evaluator; rescale
//! placement preserves decrypted values and is flagged via
//! [`Plan::value_preserving`].
//!
//! [`RecordingEvaluator`]: crate::recorder::RecordingEvaluator
//! [`HomomorphicOps`]: crate::ops::HomomorphicOps
//! [`PoseidonMachine`]: crate::machine::PoseidonMachine

pub mod compile;
pub mod exec;
pub mod graph;
pub mod passes;

pub use compile::{compile_trace, CompileOptions, CompiledProgram};
pub use exec::{execute, ExecOutcome};
pub use graph::{EvalGraph, GraphOp, GraphRecorder, Node, NodeId, ValueId, ValueInfo};
pub use passes::{plan, Plan, PlanOptions, PlanStats};
