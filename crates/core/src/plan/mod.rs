//! The evaluation planner — the software analogue of Poseidon's HFAuto
//! operator decomposer.
//!
//! HFAuto turns high-level HE operators into basic-op schedules that
//! maximise keyswitch-digit reuse and on-chip residency. This module does
//! the same over recorded (or compiled) evaluation graphs:
//!
//! 1. **Capture** — [`RecordingEvaluator`] records the SSA dataflow of a
//!    real run ([`graph::EvalGraph`]), or [`compile_trace`] lowers a
//!    `.pos` op trace into one.
//! 2. **Optimize** — [`plan`] runs rescale sinking/fusion, cross-graph
//!    rotation hoisting into `rotate_many`, dead-value elimination, and
//!    live-range-aware scheduling ([`passes`]); [`try_plan`] additionally
//!    runs the bootstrap-insertion pass (chains that exhaust the modulus
//!    get a [`GraphOp::Bootstrap`] refresh, or a typed [`PlanError`])
//!    and can consult a hardware [`CostModel`](cost::CostModel) as a
//!    scheduling tie-breaker.
//! 3. **Execute** — [`execute`] replays the optimized schedule on any
//!    [`HomomorphicOps`] backend: the software evaluator, the
//!    accelerator-shaped [`PoseidonMachine`], or the recorder itself.
//!    [`execute_with`] supplies a `Bootstrapper` for plans that refresh.
//!
//! Bit-preserving schedules (hoist + DVE + reorder only) reproduce the
//! unplanned outputs digest-identically on the evaluator; rescale
//! placement and bootstrap insertion preserve decrypted values and are
//! flagged via [`Plan::value_preserving`].
//!
//! [`RecordingEvaluator`]: crate::recorder::RecordingEvaluator
//! [`HomomorphicOps`]: crate::ops::HomomorphicOps
//! [`PoseidonMachine`]: crate::machine::PoseidonMachine

use std::fmt;

pub mod compile;
pub mod cost;
pub mod exec;
pub mod graph;
pub mod passes;

pub use compile::{
    compile_trace, plan_trace, CompileOptions, CompiledProgram, Exhaustion, SCALE_MARGIN_BITS,
};
pub use cost::{CostModel, TableCostModel};
pub use exec::{execute, execute_with, ExecOutcome};
pub use graph::{EvalGraph, GraphOp, GraphRecorder, Node, NodeId, ValueId, ValueInfo};
pub use passes::{
    plan, try_plan, try_plan_with, BootstrapOptions, NoiseBudget, Plan, PlanOptions, PlanStats,
};

/// Why a program could not be planned. Unlike runtime
/// [`EvalError`](he_ckks::error::EvalError)s these are *static* verdicts:
/// the planner proved from level/scale metadata alone that the
/// computation cannot fit the modulus chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// A value's tracked scale meets or exceeds the live modulus bits at
    /// its level — the ciphertext would no longer decrypt. Raised by the
    /// `.pos` lowering when even a fresh top-level input cannot fund the
    /// requested operation (the condition `make_room` used to paper
    /// over), and by the bootstrap-insertion pass when refreshing cannot
    /// help either.
    ScaleOverflow {
        /// Level at which the overflow occurs.
        level: usize,
        /// The tracked scale (log2) that does not fit.
        scale_bits: f64,
        /// The live modulus bits at that level.
        total_bits: f64,
    },
    /// A chain exhausted the modulus and bootstrap insertion was not
    /// possible — no bootstrap key is registered, or the cost model
    /// priced the refresh above shipping the ciphertext back for
    /// re-encryption.
    BudgetExhausted {
        /// Index of the first exhausted SSA value.
        value: usize,
        /// Its level.
        level: usize,
        /// Its tracked scale (log2).
        scale_bits: f64,
        /// Why insertion was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ScaleOverflow {
                level,
                scale_bits,
                total_bits,
            } => write!(
                f,
                "scale overflow: {scale_bits:.1} bits at level {level} exceeds \
                 the {total_bits:.1}-bit modulus"
            ),
            PlanError::BudgetExhausted {
                value,
                level,
                scale_bits,
                reason,
            } => write!(
                f,
                "noise budget exhausted at value {value} (level {level}, \
                 {scale_bits:.1} scale bits): {reason}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}
