//! Hardware cost model consulted by the planner.
//!
//! The paper's HFAuto orders basic operations against the accelerator's
//! cycle model, not just dataflow. This module gives the planner the same
//! lever: a [`CostModel`] answers "how many cycles does this node cost at
//! this level", and the Kahn scheduler uses it as a *tie-breaker* behind
//! the affinity score (so the PR 8 digest-identity guarantees hold
//! whenever cost tie-breaking is off, the default), while the
//! bootstrap-insertion pass uses it for the bootstrap-vs-re-encrypt
//! decision.
//!
//! [`TableCostModel`] is the default implementation: a per-op cycle table
//! whose constants are derived from `poseidon-sim`'s timing model
//! (`timing::time_op` under the paper's U280 configuration), scaled
//! linearly with the operand level — the dominant term, since every
//! operator streams `(level+1)·N` residues. `poseidon-sim` itself exports
//! a `SimCostModel` that computes the same quantities from the full
//! analytical model; the table here keeps `poseidon-core` free of a
//! dependency cycle (sim depends on core).

use crate::plan::graph::GraphOp;

/// Per-node cycle estimates for planning decisions. Implementations must
/// be deterministic: the scheduler folds these numbers into a
/// reproducible order.
pub trait CostModel {
    /// Estimated cycles to execute `op` on an operand at `level`.
    fn op_cost(&self, op: &GraphOp, level: usize) -> u64;

    /// Estimated cycles for a full bootstrap refreshing to
    /// `target_level`. Bootstrapping is a long fixed pipeline (ModRaise →
    /// SubSum → CoeffToSlot → EvalMod → SlotToCoeff), so the default is a
    /// large multiple of a keyswitching op at the top of the chain.
    fn bootstrap_cost(&self, target_level: usize) -> u64 {
        // ≈ 2·slots hoisted rotations + a dozen EvalMod multiplies.
        64 * self.op_cost(&GraphOp::Mul, target_level.max(1))
    }

    /// Estimated cycles (client + server) to ship an exhausted ciphertext
    /// back for decrypt/re-encrypt instead of bootstrapping — the
    /// alternative the depth-vs-bootstrap decision weighs. Includes the
    /// wire round trip, so it dwarfs on-device refresh for realistic
    /// deployments.
    fn reencrypt_cost(&self) -> u64 {
        1 << 22
    }
}

/// Default table-backed cost model.
///
/// Base cycle counts per op class at level 1, derived from
/// `poseidon-sim`'s `time_op` on the paper's Poseidon/U280 instance
/// (512 lanes, fusion k=3): keyswitching ops (CMult, Rotation) cost
/// roughly an order of magnitude more than element-wise ops (HAdd,
/// PMult), rescale sits in between, and data movement (level drops)
/// is nearly free. Costs scale linearly with `level + 1` (limb count).
#[derive(Debug, Clone)]
pub struct TableCostModel {
    /// Cycles per (level+1) for an element-wise add/sub.
    pub add: u64,
    /// Cycles per (level+1) for a plaintext multiply.
    pub mul_plain: u64,
    /// Cycles per (level+1) for a relinearised ciphertext multiply.
    pub mul: u64,
    /// Cycles per (level+1) for a rescale.
    pub rescale: u64,
    /// Cycles per (level+1) for a single keyswitched rotation.
    pub rotate: u64,
    /// Cycles per (level+1) for each *additional* rotation in a hoisted
    /// batch (the digit lift is paid once, at [`rotate`](Self::rotate)).
    pub rotate_extra: u64,
}

impl Default for TableCostModel {
    fn default() -> Self {
        Self {
            add: 16,
            mul_plain: 32,
            mul: 320,
            rescale: 96,
            rotate: 288,
            rotate_extra: 64,
        }
    }
}

impl CostModel for TableCostModel {
    fn op_cost(&self, op: &GraphOp, level: usize) -> u64 {
        let l = (level + 1) as u64;
        match op {
            GraphOp::Input { .. } | GraphOp::DropToLevel { .. } => 0,
            GraphOp::Add | GraphOp::Sub | GraphOp::AddPlain { .. } => self.add * l,
            GraphOp::MulPlain { .. } => self.mul_plain * l,
            GraphOp::Mul | GraphOp::Square => self.mul * l,
            GraphOp::Rescale => self.rescale * l,
            GraphOp::Rotate { .. } | GraphOp::Conjugate => self.rotate * l,
            GraphOp::RotateMany { steps } => {
                (self.rotate + self.rotate_extra * steps.len().saturating_sub(1) as u64) * l
            }
            GraphOp::Bootstrap { target_level } => self.bootstrap_cost(*target_level),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyswitch_ops_dominate_elementwise_ops() {
        let m = TableCostModel::default();
        for level in [0usize, 3, 7] {
            assert!(m.op_cost(&GraphOp::Mul, level) > m.op_cost(&GraphOp::Add, level));
            assert!(
                m.op_cost(&GraphOp::Rotate { steps: 1 }, level)
                    > m.op_cost(&GraphOp::MulPlain { pt: 0 }, level)
            );
        }
    }

    #[test]
    fn hoisted_batch_beats_individual_rotations() {
        let m = TableCostModel::default();
        let steps: Vec<i64> = (1..=8).collect();
        let batch = m.op_cost(
            &GraphOp::RotateMany {
                steps: steps.clone(),
            },
            3,
        );
        let singles: u64 = steps
            .iter()
            .map(|&s| m.op_cost(&GraphOp::Rotate { steps: s }, 3))
            .sum();
        assert!(batch < singles, "hoisting must be modelled as a win");
    }

    #[test]
    fn cost_scales_with_level() {
        let m = TableCostModel::default();
        assert!(m.op_cost(&GraphOp::Mul, 7) > m.op_cost(&GraphOp::Mul, 1));
    }

    #[test]
    fn bootstrap_beats_reencrypt_by_default() {
        let m = TableCostModel::default();
        assert!(m.bootstrap_cost(2) < m.reencrypt_cost());
    }
}
