//! Optimizer passes over [`EvalGraph`] and the live-range-aware
//! scheduler that turns an optimized graph into a [`Plan`].
//!
//! Pass pipeline (in application order):
//!
//! 1. **Rescale sinking** — `rescale(rotate(x))` → `rotate(rescale(x))`,
//!    CSE-ing the shared rescale across all rotations of `x`. Keyswitching
//!    then runs at the lower level (fewer limbs per digit lift) and
//!    exposes sibling rotations of one value to the hoisting pass.
//! 2. **Rescale fusion** — `add(rescale(x), rescale(y))` →
//!    `rescale(add(x, y))`, applied to fixpoint so sequential
//!    accumulation chains collapse K rescales into one.
//! 3. **Rotation hoisting** — all rotations of the same source value
//!    anywhere in the graph become one `RotateMany` node, paying the
//!    keyswitch digit lift + forward NTTs once (Halevi-Shoup).
//! 4. **Dead-value elimination** — reverse reachability from the graph
//!    outputs; unreached compute nodes are tombstoned.
//! 5. **Scheduling** — Kahn's algorithm with a deterministic score that
//!    prefers (a) nodes that release their operands (shrinking the live
//!    set → scratch-pool reuse) and (b) nodes sharing an operand with the
//!    previously scheduled node (keyswitch-key/digit cache affinity).
//!
//! Passes 3–5 are bit-preserving; passes 1–2 change where rescales land,
//! which changes ciphertext bits but preserves decrypted values (same
//! primes dropped, same final level/scale) — the plan records this in
//! [`Plan::value_preserving`] so callers know whether digest pinning
//! applies.

use std::collections::HashMap;

use he_ckks::params::CkksParams;

use crate::plan::compile::SCALE_MARGIN_BITS;
use crate::plan::cost::{CostModel, TableCostModel};
use crate::plan::graph::{EvalGraph, GraphOp, NodeId, ValueId};
use crate::plan::PlanError;

/// Which passes run. Default: everything on, hoist batches of ≥ 2, no
/// cost tie-breaking, no bootstrap insertion — so [`PlanOptions::default`]
/// reproduces PR 8 schedules bit-identically.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Cross-graph rotation hoisting into `RotateMany` (bit-preserving on
    /// backends whose `rotate_many` is hoist-equivalent, e.g. `Evaluator`).
    pub hoist_rotations: bool,
    /// Rescale sinking + fusion (value-preserving, not bit-preserving).
    pub place_rescales: bool,
    /// Dead-value elimination (bit-preserving).
    pub eliminate_dead: bool,
    /// Live-range-aware reordering (bit-preserving). When off, the
    /// schedule keeps graph creation order.
    pub reorder: bool,
    /// Minimum sibling rotations of one source before hoisting pays.
    pub min_hoist: usize,
    /// `.pos` lowering fan cap, forwarded to
    /// [`CompileOptions::count_cap`](crate::plan::compile::CompileOptions)
    /// by [`plan_trace`](crate::plan::compile::plan_trace).
    pub count_cap: u64,
    /// Break affinity-score ties with the cost model (cheaper op first)
    /// instead of creation order. Off by default: cost-reordered schedules
    /// are validated by output agreement, not digest identity.
    pub cost_tiebreak: bool,
    /// Enable the bootstrap-insertion pass ([`try_plan`] only; [`plan`]
    /// ignores this field and stays infallible).
    pub bootstrap: Option<BootstrapOptions>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            hoist_rotations: true,
            place_rescales: true,
            eliminate_dead: true,
            reorder: true,
            min_hoist: 2,
            count_cap: 8,
            cost_tiebreak: false,
            bootstrap: None,
        }
    }
}

impl PlanOptions {
    /// All passes disabled — [`plan`] with these options is the unplanned
    /// baseline (identical to [`Plan::passthrough`]).
    pub fn none() -> Self {
        Self {
            hoist_rotations: false,
            place_rescales: false,
            eliminate_dead: false,
            reorder: false,
            min_hoist: 2,
            count_cap: 8,
            cost_tiebreak: false,
            bootstrap: None,
        }
    }
}

/// The modulus-chain budget the bootstrap-insertion pass checks values
/// against — the same pressure rule the `.pos` lowering applies
/// ([`SCALE_MARGIN_BITS`] of decryption headroom under the live modulus
/// bits).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseBudget {
    /// log2 of the first (base) prime.
    pub first_prime_bits: f64,
    /// log2 of one scale prime (bits regained per level).
    pub scale_prime_bits: f64,
    /// Required decryption headroom.
    pub margin_bits: f64,
}

impl NoiseBudget {
    /// The budget implied by a parameter set, with the lowering's margin.
    pub fn from_params(params: &CkksParams) -> Self {
        Self {
            first_prime_bits: f64::from(params.first_prime_bits),
            scale_prime_bits: f64::from(params.scale_prime_bits),
            margin_bits: SCALE_MARGIN_BITS,
        }
    }

    /// Live modulus bits at `level`.
    pub fn total_bits(&self, level: usize) -> f64 {
        self.first_prime_bits + level as f64 * self.scale_prime_bits
    }

    /// Would a value at `level` with `scale_bits` still decrypt (with
    /// margin)?
    pub fn fits(&self, level: usize, scale_bits: f64) -> bool {
        scale_bits + self.margin_bits < self.total_bits(level)
    }
}

/// Policy for the bootstrap-insertion pass.
#[derive(Debug, Clone)]
pub struct BootstrapOptions {
    /// Whether the executing tenant holds bootstrap key material (sparse
    /// secret, required rotation + conjugation keys). When false, an
    /// exhausted chain is a typed [`PlanError::BudgetExhausted`] instead
    /// of an inserted refresh.
    pub key_available: bool,
    /// Level inserted `Bootstrap` nodes refresh to. Must not exceed what
    /// the executing `Bootstrapper` delivers (the executor fails with
    /// `LevelMismatch` otherwise). Levels ≥ 2 leave room for a squaring
    /// right after the refresh.
    pub refresh_level: usize,
    /// The modulus budget violations are measured against.
    pub budget: NoiseBudget,
}

impl BootstrapOptions {
    /// Insertion enabled for a tenant holding bootstrap keys.
    pub fn for_params(params: &CkksParams, refresh_level: usize) -> Self {
        Self {
            key_available: true,
            refresh_level,
            budget: NoiseBudget::from_params(params),
        }
    }

    /// Budget *checking* without key material: exhausted chains become
    /// typed errors at plan time instead of runtime garbage.
    pub fn without_key(params: &CkksParams, refresh_level: usize) -> Self {
        Self {
            key_available: false,
            refresh_level,
            budget: NoiseBudget::from_params(params),
        }
    }
}

/// What the passes did, for reporting and assertions.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Live nodes before any pass ran.
    pub nodes_before: usize,
    /// Live nodes after all passes.
    pub nodes_after: usize,
    /// Rescale nodes before / after placement.
    pub rescales_before: usize,
    /// Rescale nodes after placement.
    pub rescales_after: usize,
    /// Add-of-rescales rewrites applied.
    pub rescales_fused: usize,
    /// Rotate-past-rescale sinks applied (rotations retargeted).
    pub rescales_sunk: usize,
    /// Sizes of each hoisted rotation batch (≥ min_hoist each).
    pub hoist_batches: Vec<usize>,
    /// Nodes removed by dead-value elimination.
    pub dead_removed: usize,
    /// Peak live ciphertext count of the creation-order schedule.
    pub max_live_before: usize,
    /// Peak live ciphertext count of the emitted schedule.
    pub max_live_after: usize,
    /// `.pos` fan repetitions the lowering cap dropped (filled by
    /// [`plan_trace`](crate::plan::compile::plan_trace); 0 for recorded
    /// graphs).
    pub truncated: u64,
    /// `Bootstrap` nodes the insertion pass added.
    pub bootstraps_inserted: usize,
}

/// An optimized, executable schedule over an [`EvalGraph`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// The (rewritten) graph.
    pub graph: EvalGraph,
    /// Topological node order the executor replays.
    pub schedule: Vec<NodeId>,
    /// `release[i]` — values whose last use is step `i` (graph outputs
    /// excluded); the executor frees their slots after the step.
    pub release: Vec<Vec<ValueId>>,
    /// Whether every applied rewrite was bit-preserving. When true, a
    /// planned replay on `Evaluator` is digest-identical to the unplanned
    /// one; when false (rescale placement fired) outputs agree only as
    /// decrypted values.
    pub value_preserving: bool,
    /// Pass telemetry.
    pub stats: PlanStats,
}

impl Plan {
    /// The unplanned baseline: creation-order schedule, no rewrites.
    pub fn passthrough(graph: EvalGraph) -> Self {
        let schedule: Vec<NodeId> = graph.live_nodes().collect();
        let (release, max_live) = compute_release(&graph, &schedule);
        let n = graph.live_node_count();
        let rescales = graph.count_ops(|op| matches!(op, GraphOp::Rescale));
        Plan {
            graph,
            schedule,
            release,
            value_preserving: true,
            stats: PlanStats {
                nodes_before: n,
                nodes_after: n,
                rescales_before: rescales,
                rescales_after: rescales,
                max_live_before: max_live,
                max_live_after: max_live,
                ..PlanStats::default()
            },
        }
    }
}

/// Runs the pass pipeline and schedules the result. Infallible: ignores
/// [`PlanOptions::bootstrap`] (use [`try_plan`] for insertion).
pub fn plan(graph: EvalGraph, opts: &PlanOptions) -> Plan {
    let mut opts = opts.clone();
    opts.bootstrap = None;
    let model = TableCostModel::default();
    run_pipeline(graph, &opts, &model).expect("planning without bootstrap insertion is infallible")
}

/// [`plan`] plus the bootstrap-insertion pass (when
/// [`PlanOptions::bootstrap`] is set) under the default table cost model.
///
/// # Errors
///
/// [`PlanError::BudgetExhausted`] when a chain exhausts the modulus and no
/// bootstrap key is available (or the refresh costs more than client
/// re-encryption); [`PlanError::ScaleOverflow`] when even a refreshed
/// operand cannot fund the exhausted operation.
pub fn try_plan(graph: EvalGraph, opts: &PlanOptions) -> Result<Plan, PlanError> {
    let model = TableCostModel::default();
    try_plan_with(graph, opts, &model)
}

/// [`try_plan`] with an explicit [`CostModel`] (e.g. `poseidon-sim`'s
/// analytical model) driving the bootstrap-vs-re-encrypt decision and,
/// with [`PlanOptions::cost_tiebreak`], scheduler tie-breaks.
///
/// # Errors
///
/// As [`try_plan`].
pub fn try_plan_with(
    graph: EvalGraph,
    opts: &PlanOptions,
    cost: &dyn CostModel,
) -> Result<Plan, PlanError> {
    run_pipeline(graph, opts, cost)
}

fn run_pipeline(
    mut graph: EvalGraph,
    opts: &PlanOptions,
    cost: &dyn CostModel,
) -> Result<Plan, PlanError> {
    let mut stats = PlanStats {
        nodes_before: graph.live_node_count(),
        rescales_before: graph.count_ops(|op| matches!(op, GraphOp::Rescale)),
        ..PlanStats::default()
    };
    {
        let creation: Vec<NodeId> = graph.live_nodes().collect();
        let (_, max_live) = compute_release(&graph, &creation);
        stats.max_live_before = max_live;
    }

    let mut value_preserving = true;
    if let Some(bs) = &opts.bootstrap {
        stats.bootstraps_inserted = insert_bootstraps(&mut graph, bs, cost)?;
        if stats.bootstraps_inserted > 0 {
            // A refresh re-encrypts the value through the bootstrapping
            // pipeline: decrypted values agree (within bootstrap
            // precision), bits do not.
            value_preserving = false;
        }
    }
    if opts.place_rescales {
        stats.rescales_sunk = sink_rescales(&mut graph);
        loop {
            let fused = fuse_rescales(&mut graph);
            if fused == 0 {
                break;
            }
            stats.rescales_fused += fused;
        }
        if stats.rescales_sunk > 0 || stats.rescales_fused > 0 {
            value_preserving = false;
        }
    }
    if opts.hoist_rotations {
        stats.hoist_batches = hoist_rotations(&mut graph, opts.min_hoist.max(2));
    }
    if opts.eliminate_dead {
        stats.dead_removed = eliminate_dead(&mut graph);
    }
    debug_assert_eq!(graph.validate(), Ok(()));

    // Inserted bootstrap nodes live at the end of the node list but feed
    // earlier consumers, so creation order is no longer topological —
    // force the Kahn scheduler whenever insertion fired.
    let schedule = if opts.reorder || stats.bootstraps_inserted > 0 {
        schedule_affinity(&graph, if opts.cost_tiebreak { Some(cost) } else { None })
    } else {
        graph.live_nodes().collect()
    };
    let (release, max_live) = compute_release(&graph, &schedule);

    stats.nodes_after = graph.live_node_count();
    stats.rescales_after = graph.count_ops(|op| matches!(op, GraphOp::Rescale));
    stats.max_live_after = max_live;

    Ok(Plan {
        graph,
        schedule,
        release,
        value_preserving,
        stats,
    })
}

/// Deterministic topological order (Kahn, lowest node index first) over
/// the live nodes — creation order is not topological once passes append
/// nodes that feed earlier consumers.
fn topo_order(g: &EvalGraph) -> Vec<NodeId> {
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    for nid in g.live_nodes() {
        indeg.insert(nid, g.node(nid).inputs.len());
    }
    let mut ready: Vec<NodeId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    // Descending sort so `pop()` yields the smallest id.
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(indeg.len());
    while let Some(nid) = ready.pop() {
        order.push(nid);
        for &o in &g.node(nid).outputs {
            for &c in &g.value(o).consumers {
                if let Some(d) = indeg.get_mut(&c) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(c);
                    }
                }
            }
        }
        ready.sort_unstable_by(|a, b| b.cmp(a));
        ready.dedup();
    }
    debug_assert_eq!(order.len(), g.live_node_count());
    order
}

/// Re-derives every value's level/scale metadata from its producer in
/// topological order, mirroring the builder's propagation rules. Needed
/// after bootstrap insertion: a refresh raises its operand's level, and
/// everything downstream shifts with it.
fn recompute_metadata(g: &mut EvalGraph) {
    let order = topo_order(g);
    for nid in order {
        let node = g.node(nid);
        let op = node.op.clone();
        let inputs = node.inputs.clone();
        let outputs = node.outputs.clone();
        let meta = |g: &EvalGraph, v: ValueId| {
            let i = g.value(v);
            (i.level, i.scale_bits)
        };
        match op {
            GraphOp::Input { .. } => {} // recorded/bound metadata stands
            GraphOp::Add | GraphOp::Sub => {
                let (la, sa) = meta(g, inputs[0]);
                let (lb, sb) = meta(g, inputs[1]);
                g.set_value_meta(outputs[0], la.min(lb), sa.max(sb));
            }
            GraphOp::AddPlain { .. } => {
                let (l, s) = meta(g, inputs[0]);
                g.set_value_meta(outputs[0], l, s);
            }
            GraphOp::MulPlain { pt } => {
                let pt_bits = g.plaintexts()[pt].scale().log2();
                let (l, s) = meta(g, inputs[0]);
                g.set_value_meta(outputs[0], l, s + pt_bits);
            }
            GraphOp::Mul => {
                let (la, sa) = meta(g, inputs[0]);
                let (lb, sb) = meta(g, inputs[1]);
                g.set_value_meta(outputs[0], la.min(lb), sa + sb);
            }
            GraphOp::Square => {
                let (l, s) = meta(g, inputs[0]);
                g.set_value_meta(outputs[0], l, 2.0 * s);
            }
            GraphOp::Rescale => {
                let (l, s) = meta(g, inputs[0]);
                let rb = g.rescale_bits();
                g.set_value_meta(outputs[0], l.saturating_sub(1), s - rb);
            }
            GraphOp::DropToLevel { level } => {
                let (_, s) = meta(g, inputs[0]);
                g.set_value_meta(outputs[0], level, s);
            }
            GraphOp::Rotate { .. } | GraphOp::Conjugate => {
                let (l, s) = meta(g, inputs[0]);
                g.set_value_meta(outputs[0], l, s);
            }
            GraphOp::RotateMany { .. } => {
                let (l, s) = meta(g, inputs[0]);
                for &o in &outputs {
                    g.set_value_meta(o, l, s);
                }
            }
            GraphOp::Bootstrap { target_level } => {
                let rb = g.rescale_bits();
                g.set_value_meta(outputs[0], target_level, rb);
            }
        }
    }
}

/// First (topologically) live non-input node producing a value outside
/// the budget, with that value.
fn first_violation(g: &EvalGraph, budget: &NoiseBudget) -> Option<(NodeId, ValueId)> {
    for nid in topo_order(g) {
        let node = g.node(nid);
        // Inputs arrive as-is; an explicit level descent adds no scale
        // (a squeezed-but-decryptable value at the chain floor — the
        // exhaust-before-refresh idiom — only becomes a violation when
        // an arithmetic consumer pushes it past the modulus, and that
        // consumer is where the refresh belongs).
        if matches!(node.op, GraphOp::Input { .. } | GraphOp::DropToLevel { .. }) {
            continue;
        }
        for &o in &node.outputs {
            let v = g.value(o);
            if !v.dead && !budget.fits(v.level, v.scale_bits) {
                return Some((nid, o));
            }
        }
    }
    None
}

/// The bootstrap-insertion pass: while some node's output exhausts the
/// modulus budget, splice a `Bootstrap` refresh onto that node's
/// ciphertext operand (the exact condition the `.pos` lowering's
/// `make_room` used to paper over). Insertion is rejected — with a typed
/// error — when no bootstrap key is registered, when the cost model
/// prices the refresh above shipping the ciphertext back for
/// re-encryption, or when even a refreshed operand cannot fund the
/// operation (parameters too small).
fn insert_bootstraps(
    g: &mut EvalGraph,
    opts: &BootstrapOptions,
    cost: &dyn CostModel,
) -> Result<usize, PlanError> {
    let mut inserted = 0usize;
    loop {
        let Some((nid, violating)) = first_violation(g, &opts.budget) else {
            return Ok(inserted);
        };
        let (level, scale_bits) = {
            let i = g.value(violating);
            (i.level, i.scale_bits)
        };
        if !opts.key_available {
            return Err(PlanError::BudgetExhausted {
                value: violating.index(),
                level,
                scale_bits,
                reason: "no bootstrap key registered for this tenant",
            });
        }
        if cost.bootstrap_cost(opts.refresh_level) > cost.reencrypt_cost() {
            return Err(PlanError::BudgetExhausted {
                value: violating.index(),
                level,
                scale_bits,
                reason: "bootstrap costed above client re-encryption",
            });
        }
        let node = g.node(nid);
        let Some(&x) = node.inputs.first() else {
            return Err(PlanError::BudgetExhausted {
                value: violating.index(),
                level,
                scale_bits,
                reason: "exhausted value has no ciphertext operand to refresh",
            });
        };
        // If the operand is already freshly bootstrapped (or the node IS
        // a refresh), another refresh cannot help: the op itself does not
        // fit the chain.
        if matches!(node.op, GraphOp::Bootstrap { .. })
            || matches!(g.node(g.value(x).producer).op, GraphOp::Bootstrap { .. })
        {
            return Err(PlanError::ScaleOverflow {
                level,
                scale_bits,
                total_bits: opts.budget.total_bits(level),
            });
        }
        // Splice: bootstrap(x) → b, retarget every occurrence of x in
        // `nid` onto b (other consumers keep the unrefreshed x).
        let bnid = g.push_raw_node(
            GraphOp::Bootstrap {
                target_level: opts.refresh_level,
            },
            vec![x],
            Vec::new(),
        );
        let b = g.fresh_value(bnid, opts.refresh_level, opts.budget.scale_prime_bits);
        g.node_mut(bnid).outputs.push(b);
        let occurrences = g.node(nid).inputs.iter().filter(|&&i| i == x).count();
        for _ in 0..occurrences {
            g.unsubscribe(x, nid);
            g.subscribe(b, nid);
        }
        for inp in g.node_mut(nid).inputs.iter_mut() {
            if *inp == x {
                *inp = b;
            }
        }
        inserted += 1;
        recompute_metadata(g);
        debug_assert_eq!(g.validate(), Ok(()));
    }
}

/// Is `v` produced by a live `Rescale` node that nothing else consumes?
/// Returns the rescale node and its input value.
fn sole_rescale_producer(g: &EvalGraph, v: ValueId) -> Option<(NodeId, ValueId)> {
    let info = g.value(v);
    if info.dead || g.is_output(v) {
        return None;
    }
    let p = info.producer;
    let node = g.node(p);
    if node.dead || !matches!(node.op, GraphOp::Rescale) {
        return None;
    }
    if info.consumers.len() != 1 {
        return None;
    }
    Some((p, node.inputs[0]))
}

/// `add(rescale(x), rescale(y))` → `rescale(add(x, y))` — one pass over
/// the graph; call to fixpoint. The rewrite keeps the *original* output
/// value id on the new rescale node so downstream consumers are untouched.
fn fuse_rescales(g: &mut EvalGraph) -> usize {
    let mut fused = 0;
    let candidates: Vec<NodeId> = g
        .live_nodes()
        .filter(|&n| matches!(g.node(n).op, GraphOp::Add | GraphOp::Sub))
        .collect();
    for nid in candidates {
        let node = g.node(nid);
        if node.dead || node.inputs.len() != 2 {
            continue;
        }
        let (u, v) = (node.inputs[0], node.inputs[1]);
        if u == v {
            continue;
        }
        let (Some((ru, x)), Some((rv, y))) =
            (sole_rescale_producer(g, u), sole_rescale_producer(g, v))
        else {
            continue;
        };
        // Legal only when both pre-rescale values live at the same level
        // (> 0 by construction) with matching scales, so the fused add is
        // well-formed and the single rescale drops the same prime.
        let (ix, iy) = (g.value(x), g.value(y));
        if ix.level != iy.level || (ix.scale_bits - iy.scale_bits).abs() > 0.5 {
            continue;
        }
        let op = g.node(nid).op.clone();
        let w = g.node(nid).outputs[0];
        let (level, sb) = (ix.level, ix.scale_bits.max(iy.scale_bits));

        // Detach the old structure.
        g.unsubscribe(u, nid);
        g.unsubscribe(v, nid);
        g.unsubscribe(x, ru);
        g.unsubscribe(y, rv);
        g.kill_node(ru);
        g.kill_node(rv);
        g.kill_node(nid);
        g.kill_value(u);
        g.kill_value(v);

        // add/sub at the pre-rescale level, then one rescale producing the
        // original output value id.
        let add_nid = g.push_raw_node(op, vec![x, y], Vec::new());
        let na = g.fresh_value(add_nid, level, sb);
        {
            let n = &mut g.node_mut(add_nid).outputs;
            n.push(na);
        }
        g.push_raw_node(GraphOp::Rescale, vec![na], vec![w]);
        fused += 1;
    }
    fused
}

/// `rescale(rotate(x))` → `rotate(rescale(x))` with the rescale CSE-d
/// across every rotation of `x` that qualifies. Returns the number of
/// rotations retargeted.
fn sink_rescales(g: &mut EvalGraph) -> usize {
    let mut sunk = 0;
    let value_count = g.values().len();
    for raw in 0..value_count {
        let x = ValueId(raw);
        if g.value(x).dead || g.value(x).level == 0 {
            continue;
        }
        // Rotations of x whose single output feeds exactly one Rescale and
        // is not itself a graph output.
        let mut movable: Vec<(NodeId, ValueId, NodeId, ValueId)> = Vec::new(); // (rot, rot_out, rescale, rescale_out)
        for &c in &g.value(x).consumers.clone() {
            let node = g.node(c);
            if node.dead || !matches!(node.op, GraphOp::Rotate { .. }) {
                continue;
            }
            let out = node.outputs[0];
            let Some((rs, back)) = sole_rescale_producer_of_consumer(g, out) else {
                continue;
            };
            debug_assert_eq!(back, out);
            movable.push((c, out, rs, g.node(rs).outputs[0]));
        }
        if movable.len() < 2 {
            // A single rotate+rescale pair gains nothing from sinking on
            // its own; the win is the shared rescale + hoistable siblings.
            continue;
        }
        // One shared rescale of x.
        let (level, sb) = {
            let i = g.value(x);
            (i.level - 1, i.scale_bits - g.rescale_bits())
        };
        let rs_nid = g.push_raw_node(GraphOp::Rescale, vec![x], Vec::new());
        let rx = g.fresh_value(rs_nid, level, sb);
        g.node_mut(rs_nid).outputs.push(rx);

        for (rot, rot_out, old_rs, final_out) in movable {
            // Retarget the rotation to consume rescale(x) and produce the
            // old post-rescale value directly.
            g.unsubscribe(x, rot);
            g.unsubscribe(rot_out, old_rs);
            g.kill_node(old_rs);
            g.kill_value(rot_out);
            let steps = match g.node(rot).op {
                GraphOp::Rotate { steps } => steps,
                _ => unreachable!(),
            };
            g.kill_node(rot);
            g.push_raw_node(GraphOp::Rotate { steps }, vec![rx], vec![final_out]);
            sunk += 1;
        }
    }
    sunk
}

/// For a value `v`: if its sole consumer is a live `Rescale` and `v` is
/// not a graph output, return that rescale node (and echo `v`).
fn sole_rescale_producer_of_consumer(g: &EvalGraph, v: ValueId) -> Option<(NodeId, ValueId)> {
    let info = g.value(v);
    if info.dead || g.is_output(v) || info.consumers.len() != 1 {
        return None;
    }
    let c = info.consumers[0];
    let node = g.node(c);
    if node.dead || !matches!(node.op, GraphOp::Rescale) {
        return None;
    }
    Some((c, v))
}

/// Groups all live rotations per source value into `RotateMany` nodes.
/// Returns the batch sizes.
fn hoist_rotations(g: &mut EvalGraph, min_hoist: usize) -> Vec<usize> {
    let mut batches = Vec::new();
    let value_count = g.values().len();
    for raw in 0..value_count {
        let x = ValueId(raw);
        if g.value(x).dead {
            continue;
        }
        let rotators: Vec<NodeId> = {
            let mut seen = Vec::new();
            for &c in &g.value(x).consumers {
                let node = g.node(c);
                if !node.dead && matches!(node.op, GraphOp::Rotate { .. }) && !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen
        };
        if rotators.len() < min_hoist {
            continue;
        }
        let mut steps = Vec::with_capacity(rotators.len());
        let mut outputs = Vec::with_capacity(rotators.len());
        for &r in &rotators {
            let node = g.node(r);
            let s = match node.op {
                GraphOp::Rotate { steps } => steps,
                _ => unreachable!(),
            };
            steps.push(s);
            outputs.push(node.outputs[0]);
            g.unsubscribe(x, r);
            g.kill_node(r);
        }
        batches.push(steps.len());
        g.push_raw_node(GraphOp::RotateMany { steps }, vec![x], outputs);
    }
    batches
}

/// Tombstones nodes whose outputs can't reach a graph output. `Input`
/// nodes are kept (the executor binds them positionally). Returns the
/// number of compute nodes removed.
fn eliminate_dead(g: &mut EvalGraph) -> usize {
    let mut live = vec![false; g.values().len()];
    let mut stack: Vec<ValueId> = g.outputs().to_vec();
    while let Some(v) = stack.pop() {
        if live[v.0] {
            continue;
        }
        live[v.0] = true;
        let p = g.value(v).producer;
        for &inp in &g.node(p).inputs {
            if !live[inp.0] {
                stack.push(inp);
            }
        }
        // Sibling outputs of a multi-output producer stay alive with it.
        for &o in &g.node(p).outputs {
            if !live[o.0] {
                stack.push(o);
            }
        }
    }
    let mut removed = 0;
    let node_count = g.nodes().len();
    for raw in 0..node_count {
        let nid = NodeId(raw);
        let node = g.node(nid);
        if node.dead || matches!(node.op, GraphOp::Input { .. }) {
            continue;
        }
        if node.outputs.iter().all(|o| !live[o.0]) {
            let inputs = node.inputs.clone();
            let outputs = node.outputs.clone();
            for v in inputs {
                g.unsubscribe(v, nid);
            }
            for o in outputs {
                g.kill_value(o);
            }
            g.kill_node(nid);
            removed += 1;
        }
    }
    removed
}

/// Kahn's algorithm with a deterministic affinity score:
/// `+2` per operand whose last remaining use is this node (freeing its
/// scratch slot), `+3` when the node shares an operand with the node just
/// scheduled (keyswitch digit / key-cache affinity). Ties break to the
/// cheaper op under `cost` (when supplied — retiring cheap ready work
/// first keeps the live set small while expensive keyswitches pipeline),
/// then to the lowest node index (stable, creation-order-biased). With
/// `cost: None` this is exactly the PR 8 scheduler.
fn schedule_affinity(g: &EvalGraph, cost: Option<&dyn CostModel>) -> Vec<NodeId> {
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    for nid in g.live_nodes() {
        indeg.insert(nid, g.node(nid).inputs.len());
    }
    let mut remaining_uses: Vec<usize> = g
        .values()
        .iter()
        .map(|v| v.consumers.iter().filter(|c| !g.node(**c).dead).count())
        .collect();

    let mut ready: Vec<NodeId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    ready.sort_unstable();

    let mut order = Vec::with_capacity(indeg.len());
    let mut prev_inputs: Vec<ValueId> = Vec::new();
    while !ready.is_empty() {
        let mut best = 0usize;
        let mut best_score = i64::MIN;
        let mut best_cost = u64::MAX;
        for (i, &cand) in ready.iter().enumerate() {
            let node = g.node(cand);
            let mut score = 0i64;
            for &v in &node.inputs {
                if remaining_uses[v.0] == 1 && !g.is_output(v) {
                    score += 2;
                }
                if prev_inputs.contains(&v) {
                    score += 3;
                }
            }
            let cand_cost = match cost {
                Some(c) => {
                    let level = node.outputs.first().map(|&o| g.value(o).level).unwrap_or(0);
                    c.op_cost(&node.op, level)
                }
                None => 0,
            };
            // Deterministic tie-break: strictly better score wins; equal
            // scores prefer the cheaper op (cost model supplied), then the
            // earliest (lowest-index) candidate.
            let better = score > best_score
                || (score == best_score
                    && (cand_cost < best_cost || (cand_cost == best_cost && ready[best] > cand)));
            if better {
                best_score = score;
                best_cost = cand_cost;
                best = i;
            }
        }
        let nid = ready.remove(best);
        let node = g.node(nid);
        prev_inputs = node.inputs.clone();
        for &v in &node.inputs {
            remaining_uses[v.0] = remaining_uses[v.0].saturating_sub(1);
        }
        for &o in &node.outputs {
            for &c in &g.value(o).consumers {
                if let Some(d) = indeg.get_mut(&c) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(c);
                    }
                }
            }
        }
        ready.sort_unstable();
        ready.dedup();
        order.push(nid);
    }
    debug_assert_eq!(order.len(), g.live_node_count());
    order
}

/// Last-use analysis: for each schedule step, which values die there
/// (graph outputs never die). Also returns the peak live value count.
fn compute_release(g: &EvalGraph, schedule: &[NodeId]) -> (Vec<Vec<ValueId>>, usize) {
    let mut last_use: HashMap<ValueId, usize> = HashMap::new();
    for (i, &nid) in schedule.iter().enumerate() {
        for &v in &g.node(nid).inputs {
            last_use.insert(v, i);
        }
    }
    let mut release: Vec<Vec<ValueId>> = vec![Vec::new(); schedule.len()];
    for (&v, &i) in &last_use {
        if !g.is_output(v) {
            release[i].push(v);
        }
    }
    for r in &mut release {
        r.sort_unstable();
    }
    // Peak live count: births at producer step, deaths at last use (or
    // never for outputs / unused values).
    let mut live = 0usize;
    let mut max_live = 0usize;
    for (i, &nid) in schedule.iter().enumerate() {
        live += g.node(nid).outputs.len();
        max_live = max_live.max(live);
        live -= release[i].len();
    }
    (release, max_live)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotation_fan() -> EvalGraph {
        let mut g = EvalGraph::new(40.0);
        let x = g.input(3, 40.0);
        let mut outs = Vec::new();
        for s in 1..=8i64 {
            outs.push(g.rotate(x, s));
        }
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = g.add(acc, o);
        }
        g.mark_output(acc);
        g
    }

    #[test]
    fn hoisting_groups_all_rotations_of_one_source() {
        let p = plan(rotation_fan(), &PlanOptions::default());
        assert_eq!(p.stats.hoist_batches, vec![8]);
        assert_eq!(
            p.graph.count_ops(|op| matches!(op, GraphOp::Rotate { .. })),
            0
        );
        assert_eq!(
            p.graph
                .count_ops(|op| matches!(op, GraphOp::RotateMany { .. })),
            1
        );
        assert!(p.value_preserving);
        assert!(p.graph.validate().is_ok());
    }

    #[test]
    fn hoisting_is_cross_graph_not_adjacent_only() {
        // Interleave rotations of x with unrelated work so they are never
        // adjacent in creation order.
        let mut g = EvalGraph::new(40.0);
        let x = g.input(3, 40.0);
        let y = g.input(3, 40.0);
        let r1 = g.rotate(x, 1);
        let y2 = g.square(y);
        let r2 = g.rotate(x, 2);
        let y3 = g.add(y2, y2);
        let r3 = g.rotate(x, 3);
        let s = g.add(r1, r2);
        let s = g.add(s, r3);
        let s = g.add(s, y3);
        g.mark_output(s);
        let p = plan(g, &PlanOptions::default());
        assert_eq!(p.stats.hoist_batches, vec![3]);
    }

    #[test]
    fn fusion_collapses_add_chain_rescales() {
        // acc = rescale(t1); for t in t2..t4 { acc = add(acc, rescale(t)) }
        // Not directly that shape — model the common per-term form:
        // add(rescale(a), rescale(b)) chains.
        let mut g = EvalGraph::new(40.0);
        let terms: Vec<ValueId> = (0..4)
            .map(|_| {
                let x = g.input(3, 40.0);
                g.square(x)
            })
            .collect();
        let rs: Vec<ValueId> = terms.iter().map(|&t| g.rescale(t)).collect();
        let mut acc = rs[0];
        for &r in &rs[1..] {
            acc = g.add(acc, r);
        }
        g.mark_output(acc);
        let before = g.count_ops(|op| matches!(op, GraphOp::Rescale));
        assert_eq!(before, 4);
        let p = plan(g, &PlanOptions::default());
        // The chain collapses to a single rescale at the root.
        assert_eq!(p.stats.rescales_after, 1);
        assert!(p.stats.rescales_fused >= 3);
        assert!(!p.value_preserving);
        assert!(p.graph.validate().is_ok());
        // Metadata of the preserved output value is unchanged.
        let out = p.graph.outputs()[0];
        assert_eq!(p.graph.value(out).level, 2);
        assert!((p.graph.value(out).scale_bits - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sinking_shares_one_rescale_across_rotations() {
        // rescale(rotate(x, s)) for 4 rotations → rotate(rescale(x)) ×4
        // with ONE rescale.
        let mut g = EvalGraph::new(40.0);
        let x0 = g.input(3, 40.0);
        let x = g.square(x0); // scale 80 → rescale meaningful
        let mut acc = None;
        for s in 1..=4i64 {
            let r = g.rotate(x, s);
            let rr = g.rescale(r);
            acc = Some(match acc {
                None => rr,
                Some(a) => g.add(a, rr),
            });
        }
        g.mark_output(acc.unwrap());
        let p = plan(g, &PlanOptions::default());
        assert_eq!(p.stats.rescales_sunk, 4);
        assert_eq!(p.stats.rescales_after, 1);
        // The four rotations now share one source → hoisted as a batch.
        assert_eq!(p.stats.hoist_batches, vec![4]);
        assert!(!p.value_preserving);
        assert!(p.graph.validate().is_ok());
    }

    #[test]
    fn dead_value_elimination_removes_unreachable_compute() {
        let mut g = EvalGraph::new(40.0);
        let x = g.input(3, 40.0);
        let used = g.square(x);
        let dead1 = g.rotate(x, 5);
        let _dead2 = g.add(dead1, dead1);
        g.mark_output(used);
        let p = plan(g, &PlanOptions::default());
        assert_eq!(p.stats.dead_removed, 2);
        assert_eq!(p.stats.nodes_after, 2); // input + square
    }

    #[test]
    fn passthrough_matches_disabled_passes() {
        let g = rotation_fan();
        let p0 = Plan::passthrough(g.clone());
        let p1 = plan(g, &PlanOptions::none());
        assert_eq!(p0.schedule, p1.schedule);
        assert!(p1.value_preserving);
        assert_eq!(p0.stats.rescales_before, p1.stats.rescales_before);
    }

    #[test]
    fn schedule_is_topological_and_complete() {
        let p = plan(rotation_fan(), &PlanOptions::default());
        let mut seen = std::collections::HashSet::new();
        for &nid in &p.schedule {
            for &v in &p.graph.node(nid).inputs {
                assert!(seen.contains(&p.graph.value(v).producer));
            }
            seen.insert(nid);
        }
        assert_eq!(p.schedule.len(), p.graph.live_node_count());
    }

    #[test]
    fn release_frees_everything_but_outputs() {
        let p = plan(rotation_fan(), &PlanOptions::default());
        let released: usize = p.release.iter().map(|r| r.len()).sum();
        // Every consumed value except the final output dies somewhere.
        assert!(released > 0);
        for r in p.release.iter().flatten() {
            assert!(!p.graph.is_output(*r));
        }
        assert!(p.stats.max_live_after <= p.stats.max_live_before);
    }

    // ---- bootstrap insertion ---------------------------------------------

    /// bootstrap_demo-shaped budget: first 48, scale primes 45.
    fn demo_budget() -> NoiseBudget {
        NoiseBudget {
            first_prime_bits: 48.0,
            scale_prime_bits: 45.0,
            margin_bits: 10.0,
        }
    }

    /// A chain that exhausts the modulus: squaring a level-0 value needs
    /// 90 scale bits against 48 live modulus bits.
    fn exhausted_graph() -> EvalGraph {
        let mut g = EvalGraph::new(45.0);
        let x = g.input(0, 45.0);
        let sq = g.square(x);
        g.mark_output(sq);
        g
    }

    fn bootstrap_opts(key: bool) -> PlanOptions {
        PlanOptions {
            bootstrap: Some(BootstrapOptions {
                key_available: key,
                refresh_level: 2,
                budget: demo_budget(),
            }),
            ..PlanOptions::default()
        }
    }

    #[test]
    fn exhausted_chain_gets_a_bootstrap_inserted() {
        let p = try_plan(exhausted_graph(), &bootstrap_opts(true)).expect("repairable");
        assert_eq!(p.stats.bootstraps_inserted, 1);
        assert_eq!(
            p.graph
                .count_ops(|op| matches!(op, GraphOp::Bootstrap { .. })),
            1
        );
        assert!(!p.value_preserving);
        assert!(p.graph.validate().is_ok());
        // The refresh lifted the chain: the square now runs at the
        // refresh level and its output fits the budget again.
        let out = p.graph.outputs()[0];
        let v = p.graph.value(out);
        assert_eq!(v.level, 2);
        assert!(demo_budget().fits(v.level, v.scale_bits));
        // The schedule stays topological even though the bootstrap node
        // was appended after its consumer.
        let mut seen = std::collections::HashSet::new();
        for &nid in &p.schedule {
            for &v in &p.graph.node(nid).inputs {
                assert!(seen.contains(&p.graph.value(v).producer));
            }
            seen.insert(nid);
        }
    }

    #[test]
    fn missing_bootstrap_key_is_a_typed_error() {
        let err =
            try_plan(exhausted_graph(), &bootstrap_opts(false)).expect_err("no key → no repair");
        assert!(
            matches!(err, PlanError::BudgetExhausted { .. }),
            "expected BudgetExhausted, got {err:?}"
        );
    }

    #[test]
    fn refresh_costed_above_reencryption_is_rejected() {
        struct ReencryptIsCheaper;
        impl CostModel for ReencryptIsCheaper {
            fn op_cost(&self, _op: &GraphOp, _level: usize) -> u64 {
                1
            }
            fn bootstrap_cost(&self, _target_level: usize) -> u64 {
                10
            }
            fn reencrypt_cost(&self) -> u64 {
                5
            }
        }
        let err = try_plan_with(
            exhausted_graph(),
            &bootstrap_opts(true),
            &ReencryptIsCheaper,
        )
        .expect_err("cost model rejects the refresh");
        assert!(matches!(
            err,
            PlanError::BudgetExhausted {
                reason: "bootstrap costed above client re-encryption",
                ..
            }
        ));
    }

    #[test]
    fn unfundable_op_even_after_refresh_is_scale_overflow() {
        // refresh_level 0: the refreshed operand still cannot fund the
        // squaring, so a second refresh is pointless — typed overflow.
        let opts = PlanOptions {
            bootstrap: Some(BootstrapOptions {
                key_available: true,
                refresh_level: 0,
                budget: demo_budget(),
            }),
            ..PlanOptions::default()
        };
        let err = try_plan(exhausted_graph(), &opts).expect_err("refresh cannot help at level 0");
        assert!(matches!(err, PlanError::ScaleOverflow { .. }));
    }

    #[test]
    fn non_exhausted_graph_plans_identically_with_insertion_enabled() {
        let base = plan(rotation_fan(), &PlanOptions::default());
        let p = try_plan(rotation_fan(), &bootstrap_opts(true)).expect("nothing to repair");
        assert_eq!(p.stats.bootstraps_inserted, 0);
        assert_eq!(
            p.graph
                .count_ops(|op| matches!(op, GraphOp::Bootstrap { .. })),
            0
        );
        assert_eq!(p.schedule, base.schedule);
        assert_eq!(p.value_preserving, base.value_preserving);
    }

    #[test]
    fn cost_tiebreak_schedule_is_topological_and_covers_all_nodes() {
        let opts = PlanOptions {
            cost_tiebreak: true,
            ..PlanOptions::default()
        };
        let p = try_plan(rotation_fan(), &opts).expect("infallible without bootstrap");
        let mut seen = std::collections::HashSet::new();
        for &nid in &p.schedule {
            for &v in &p.graph.node(nid).inputs {
                assert!(seen.contains(&p.graph.value(v).producer));
            }
            seen.insert(nid);
        }
        assert_eq!(p.schedule.len(), p.graph.live_node_count());
    }
}
