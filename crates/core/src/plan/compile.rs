//! `.pos` front end: lowers a flat [`OpTrace`] (the format
//! `sim::program::parse` produces) into an executable [`EvalGraph`].
//!
//! A `.pos` file is an op-count stream at *hardware* scale (ring degree
//! 2^16, virtual levels up to 57, repetition counts in the hundreds) —
//! there is no dataflow in the file. The lowering synthesises a
//! deterministic dataflow with the same operational shape, sized for the
//! executing context:
//!
//! * A **current value** `cur` accumulates the computation; rotation and
//!   keyswitch entries spread it into a **fan** of parallel terms
//!   (rotations by cycling step counts), `pmult` masks each term,
//!   `rescale` rescales each term, `hadd` reduces the fan back into
//!   `cur` — the BSGS diagonal-matvec shape. Fans reduce by a balanced
//!   add tree (depth ⌈log₂k⌉; modular addition is associative, so the
//!   result is bit-identical to a linear chain).
//! * Repetition counts are capped at [`CompileOptions::count_cap`]
//!   (dropped work is reported in [`CompiledProgram::truncated`] and
//!   surfaced through `PlanStats::truncated` / the `plan.truncated`
//!   telemetry scope, never silently).
//! * Virtual levels are mapped onto the context's chain by ratio; level
//!   descents become `drop_to_level` nodes.
//! * A **pressure rule** keeps the tracked scale decryptable at every
//!   step: an operation that would push `log2(scale)` within
//!   [`SCALE_MARGIN_BITS`] of the live modulus bits forces an eager
//!   rescale, or — when no level is left — applies the configured
//!   [`Exhaustion`] policy: close the segment and restart from a fresh
//!   top-level input ([`CompiledProgram::segments`] counts these), defer
//!   to the planner's bootstrap-insertion pass, or — when even a fresh
//!   input cannot fund the operation — fail with a typed
//!   [`PlanError::ScaleOverflow`] instead of silently exceeding the
//!   modulus.

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;

use crate::decompose::{BasicOp, OpTrace};
use crate::plan::graph::{EvalGraph, ValueId};
use crate::plan::passes::{try_plan, Plan, PlanOptions};
use crate::plan::PlanError;

#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    /// Fan repetitions dropped by `count_cap` (items = ops dropped).
    pub fn truncated() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("plan.truncated"))
    }
}

/// Decryption headroom: the tracked scale must stay this many bits below
/// the live modulus product.
pub const SCALE_MARGIN_BITS: f64 = 10.0;

/// What the lowering does when the level/scale budget is exhausted and
/// rescaling cannot make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exhaustion {
    /// Close the segment (mark `cur` as an output) and restart from a
    /// fresh top-level input — at most once per squeeze; if a *fresh*
    /// input still cannot fund the operation, fail with
    /// [`PlanError::ScaleOverflow`]. This is the classic PR 8 behavior
    /// minus its silent-overflow hole.
    #[default]
    SegmentReset,
    /// Never reset: keep a single dataflow and let the exhausted
    /// level/scale metadata stand, counting each event in
    /// [`CompiledProgram::exhausted`]. The planner's bootstrap-insertion
    /// pass repairs these values with `Bootstrap` nodes (or rejects the
    /// program with a typed error).
    Defer,
}

/// Lowering knobs.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Per-entry repetition cap (`.pos` counts above this are truncated
    /// and reported).
    pub count_cap: u64,
    /// Rotation steps cycle through `1..=max_rotation_step`.
    pub max_rotation_step: i64,
    /// Budget-exhaustion policy (see [`Exhaustion`]).
    pub exhaustion: Exhaustion,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            count_cap: 8,
            max_rotation_step: 8,
            exhaustion: Exhaustion::SegmentReset,
        }
    }
}

/// A lowered `.pos` program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The executable dataflow graph.
    pub graph: EvalGraph,
    /// Operations the cap dropped (sum over entries of `count - emitted`).
    pub truncated: u64,
    /// Number of lowering segments (1 + resets forced by exhausted
    /// level/scale budget).
    pub segments: usize,
    /// Budget-exhaustion events left in the graph for the planner to
    /// repair (always 0 under [`Exhaustion::SegmentReset`]).
    pub exhausted: u64,
    /// Rotation steps the graph uses (generate these keys before
    /// executing).
    pub rotation_steps: Vec<i64>,
}

struct Lowering<'a> {
    g: EvalGraph,
    ctx: &'a CkksContext,
    opts: &'a CompileOptions,
    cur: ValueId,
    fan: Vec<ValueId>,
    pt_counter: usize,
    truncated: u64,
    segments: usize,
    exhausted: u64,
    rot_cursor: i64,
    default_bits: f64,
}

impl<'a> Lowering<'a> {
    fn new(ctx: &'a CkksContext, opts: &'a CompileOptions) -> Self {
        let default_bits = ctx.default_scale().log2();
        let mut g = EvalGraph::new(f64::from(ctx.params().scale_prime_bits));
        let cur = g.input(ctx.max_level(), default_bits);
        Self {
            g,
            ctx,
            opts,
            cur,
            fan: Vec::new(),
            pt_counter: 0,
            truncated: 0,
            segments: 1,
            exhausted: 0,
            rot_cursor: 0,
            default_bits,
        }
    }

    fn level(&self, v: ValueId) -> usize {
        self.g.value(v).level
    }

    fn sb(&self, v: ValueId) -> f64 {
        self.g.value(v).scale_bits
    }

    /// Live modulus bits at `level`.
    fn total_bits(&self, level: usize) -> f64 {
        let p = self.ctx.params();
        f64::from(p.first_prime_bits) + level as f64 * f64::from(p.scale_prime_bits)
    }

    /// Would a value at `level` with `scale_bits` still decrypt?
    fn fits(&self, level: usize, scale_bits: f64) -> bool {
        scale_bits + SCALE_MARGIN_BITS < self.total_bits(level)
    }

    fn cap(&mut self, count: u64) -> u64 {
        let k = count.min(self.opts.count_cap);
        self.truncated += count - k;
        k
    }

    fn next_step(&mut self) -> i64 {
        self.rot_cursor = self.rot_cursor % self.opts.max_rotation_step + 1;
        self.rot_cursor
    }

    /// Encodes a fresh deterministic mask plaintext at `level`. Mask
    /// magnitudes sit near 0.1 so value growth (8-term reductions,
    /// squarings) never races the modulus even in deep programs — the
    /// pressure rule tracks scale bits, not message magnitude.
    fn plaintext_at(&mut self, level: usize) -> usize {
        let slots = 8.min(self.ctx.params().n / 2);
        let z: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(0.09 + 0.005 * ((self.pt_counter + i) % 8) as f64, 0.0))
            .collect();
        self.pt_counter += 1;
        let basis = self.ctx.level_basis(level);
        let pt = Plaintext::new(
            self.ctx
                .encoder()
                .encode_rns(&basis, &z, self.ctx.default_scale()),
            self.ctx.default_scale(),
        );
        self.g.intern_plaintext(pt)
    }

    /// Reduces the fan into `cur` with a balanced add tree (no-op when
    /// the fan is empty). Depth ⌈log₂k⌉ instead of the k−1 of a linear
    /// chain; modular addition is associative, so the reduced value is
    /// bit-identical either way.
    fn reduce(&mut self) {
        if self.fan.is_empty() {
            return;
        }
        let mut layer = std::mem::take(&mut self.fan);
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < layer.len() {
                next.push(self.g.add(layer[i], layer[i + 1]));
                i += 2;
            }
            if i < layer.len() {
                // Odd term rides up to the next round unpaired.
                next.push(layer[i]);
            }
            layer = next;
        }
        self.cur = layer[0];
    }

    /// Exhausted level/scale budget: close the segment (mark `cur` as an
    /// output) and restart from a fresh top-level input.
    fn reset(&mut self) {
        debug_assert!(self.fan.is_empty(), "reset with a pending fan");
        self.g.mark_output(self.cur);
        self.cur = self.g.input(self.ctx.max_level(), self.default_bits);
        self.segments += 1;
    }

    /// Rescales every fan term once (uniform level/scale by
    /// construction).
    fn rescale_fan(&mut self) {
        let fan = std::mem::take(&mut self.fan);
        self.fan = fan.into_iter().map(|t| self.g.rescale(t)).collect();
    }

    /// Level descent requested by the virtual-level mapping.
    fn maybe_drop(&mut self, target: usize) {
        if self.fan.is_empty() && target < self.level(self.cur) {
            self.cur = self.g.drop_to_level(self.cur, target);
        }
    }

    /// Makes room on `cur` for an operation that adds `extra_bits` of
    /// scale. Rescales while a level and scale headroom remain; on
    /// exhaustion, applies the configured [`Exhaustion`] policy. Under
    /// [`Exhaustion::SegmentReset`], at most one reset — if even a fresh
    /// top-level input cannot fund the operation, the program does not
    /// fit the parameter set and a typed [`PlanError::ScaleOverflow`] is
    /// returned (a margin-only squeeze that still stays under the
    /// modulus is tolerated, for tiny test parameter sets).
    fn make_room(&mut self, extra_bits: f64) -> Result<(), PlanError> {
        let mut reset_done = false;
        loop {
            let (lv, s) = (self.level(self.cur), self.sb(self.cur));
            if self.fits(lv, s + extra_bits) {
                return Ok(());
            }
            if lv > 0 && s > self.default_bits + 0.5 {
                self.cur = self.g.rescale(self.cur);
            } else if self.opts.exhaustion == Exhaustion::Defer {
                self.exhausted += 1;
                return Ok(());
            } else if !reset_done {
                self.reset();
                reset_done = true;
            } else if s + extra_bits >= self.total_bits(lv) {
                return Err(PlanError::ScaleOverflow {
                    level: lv,
                    scale_bits: s + extra_bits,
                    total_bits: self.total_bits(lv),
                });
            } else {
                // Inside the margin but still under the modulus: tolerate
                // (tiny parameter sets land here on their first op).
                return Ok(());
            }
        }
    }

    fn lower_entry(&mut self, op: BasicOp, target: usize, count: u64) -> Result<(), PlanError> {
        match op {
            BasicOp::Rotation | BasicOp::Keyswitch => {
                self.reduce();
                self.maybe_drop(target);
                let k = self.cap(count);
                self.fan = (0..k)
                    .map(|_| {
                        let s = self.next_step();
                        self.g.rotate(self.cur, s)
                    })
                    .collect();
            }
            BasicOp::PMult => {
                if self.fan.is_empty() {
                    self.maybe_drop(target);
                    let k = self.cap(count);
                    self.make_room(self.default_bits)?;
                    let lv = self.level(self.cur);
                    self.fan = (0..k)
                        .map(|_| {
                            let pt = self.plaintext_at(lv);
                            self.g.mul_plain(self.cur, pt)
                        })
                        .collect();
                } else {
                    // One mask per fan term keeps the fan uniform; excess
                    // repetitions are truncated.
                    let n = self.fan.len() as u64;
                    self.truncated += count.saturating_sub(n);
                    let (lv, s) = (self.level(self.fan[0]), self.sb(self.fan[0]));
                    if !self.fits(lv, s + self.default_bits) {
                        if lv > 0 && s > self.default_bits + 0.5 {
                            self.rescale_fan();
                        } else if self.opts.exhaustion == Exhaustion::Defer {
                            self.exhausted += 1;
                        } else if lv == 0 {
                            // No scale room at the chain floor — close the
                            // segment rather than exceed the modulus.
                            self.reduce();
                            self.reset();
                        } else if s + self.default_bits >= self.total_bits(lv) {
                            return Err(PlanError::ScaleOverflow {
                                level: lv,
                                scale_bits: s + self.default_bits,
                                total_bits: self.total_bits(lv),
                            });
                        }
                        // else: margin squeeze that stays under the
                        // modulus — tolerated (tiny parameter sets).
                    }
                    if self.fan.is_empty() {
                        // Segment reset: rebuild the fan from the fresh input.
                        let k = n.clamp(1, self.opts.count_cap);
                        let lvc = self.level(self.cur);
                        self.fan = (0..k)
                            .map(|_| {
                                let pt = self.plaintext_at(lvc);
                                self.g.mul_plain(self.cur, pt)
                            })
                            .collect();
                    } else {
                        let lv = self.level(self.fan[0]);
                        let fan = std::mem::take(&mut self.fan);
                        self.fan = fan
                            .into_iter()
                            .map(|t| {
                                let pt = self.plaintext_at(lv);
                                self.g.mul_plain(t, pt)
                            })
                            .collect();
                    }
                }
            }
            BasicOp::Rescale => {
                if !self.fan.is_empty() {
                    let (lv, s) = (self.level(self.fan[0]), self.sb(self.fan[0]));
                    if lv > 0 && s > self.default_bits + 0.5 {
                        self.rescale_fan();
                    }
                } else if self.level(self.cur) > 0 && self.sb(self.cur) > self.default_bits + 0.5 {
                    self.cur = self.g.rescale(self.cur);
                }
                // Already at default scale (or level 0): the request is
                // satisfied vacuously.
            }
            BasicOp::HAdd => {
                let k = self.cap(count);
                if self.fan.len() >= 2 {
                    self.reduce();
                } else {
                    self.reduce(); // fan of one → cur
                    for _ in 0..k.min(2) {
                        self.cur = self.g.add(self.cur, self.cur);
                    }
                }
            }
            BasicOp::CMult => {
                self.reduce();
                self.maybe_drop(target);
                let k = self.cap(count);
                for _ in 0..k {
                    let s = self.sb(self.cur);
                    self.make_room(s)?;
                    self.cur = self.g.square(self.cur);
                }
            }
            BasicOp::Moddown => {
                self.reduce();
                let k = self.cap(count) as usize;
                let lv = self.level(self.cur);
                let dropped = k.min(lv);
                if dropped > 0 {
                    self.cur = self.g.drop_to_level(self.cur, lv - dropped);
                }
            }
            BasicOp::Modup => {
                // Basis extension has no dataflow effect at this level.
            }
        }
        Ok(())
    }

    fn finish(mut self) -> CompiledProgram {
        self.reduce();
        self.g.mark_output(self.cur);
        let rotation_steps = self.g.required_rotation_steps();
        CompiledProgram {
            graph: self.g,
            truncated: self.truncated,
            segments: self.segments,
            exhausted: self.exhausted,
            rotation_steps,
        }
    }
}

/// Lowers a parsed `.pos` trace into an executable graph for `ctx`.
///
/// # Errors
///
/// [`PlanError::ScaleOverflow`] when the parameter set cannot fund the
/// program under [`Exhaustion::SegmentReset`] — even a fresh top-level
/// input would exceed the modulus (never errors under
/// [`Exhaustion::Defer`]; the planner repairs or rejects instead).
pub fn compile_trace(
    trace: &OpTrace,
    ctx: &CkksContext,
    opts: &CompileOptions,
) -> Result<CompiledProgram, PlanError> {
    let virt_max = trace
        .entries()
        .iter()
        .map(|(_, p, _)| p.components)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let max_level = ctx.max_level();
    let mut lowering = Lowering::new(ctx, opts);
    for &(op, params, count) in trace.entries() {
        let target = ((params.components as f64 / virt_max) * max_level as f64).ceil() as usize;
        let target = target.min(max_level);
        lowering.lower_entry(op, target, count)?;
    }
    Ok(lowering.finish())
}

/// End-to-end `.pos` planning: lower the trace (with `opts.count_cap` and
/// an exhaustion policy derived from `opts.bootstrap`), run the pass
/// pipeline, and surface lowering telemetry (`PlanStats::truncated`,
/// `plan.truncated` scope) in the resulting [`Plan`].
///
/// # Errors
///
/// Propagates [`PlanError`] from the lowering (scale overflow) or from
/// bootstrap insertion (budget exhausted with no key, or refresh costed
/// above re-encryption).
pub fn plan_trace(
    trace: &OpTrace,
    ctx: &CkksContext,
    opts: &PlanOptions,
) -> Result<Plan, PlanError> {
    let copts = CompileOptions {
        count_cap: opts.count_cap,
        exhaustion: if opts.bootstrap.is_some() {
            Exhaustion::Defer
        } else {
            Exhaustion::SegmentReset
        },
        ..CompileOptions::default()
    };
    let prog = compile_trace(trace, ctx, &copts)?;
    if prog.truncated > 0 {
        #[cfg(feature = "telemetry")]
        tel::truncated().add(prog.truncated);
    }
    let mut plan = try_plan(prog.graph, opts)?;
    plan.stats.truncated = prog.truncated;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::OpParams;
    use crate::plan::graph::{GraphOp, NodeId};
    use he_ckks::params::CkksParams;

    fn trace_of(entries: &[(BasicOp, usize, u64)]) -> OpTrace {
        let mut t = OpTrace::new();
        for &(op, components, count) in entries {
            t.push(op, OpParams::new(1 << 16, components, 2), count);
        }
        t
    }

    #[test]
    fn bsgs_shape_produces_a_rotation_fan() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[
            (BasicOp::Rotation, 20, 8),
            (BasicOp::PMult, 20, 8),
            (BasicOp::Rescale, 20, 8),
            (BasicOp::HAdd, 20, 8),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        assert!(prog.graph.validate().is_ok());
        assert_eq!(prog.rotation_steps, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(prog.segments, 1);
        assert_eq!(prog.exhausted, 0);
        assert_eq!(prog.graph.outputs().len(), 1);
        // 8 rotations of one source — prime hoisting material.
        assert_eq!(
            prog.graph
                .count_ops(|op| matches!(op, GraphOp::Rotate { .. })),
            8
        );
    }

    #[test]
    fn counts_are_capped_and_reported() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[(BasicOp::Rotation, 14, 46), (BasicOp::HAdd, 14, 46)]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        assert!(prog.truncated >= 38);
        assert!(prog.graph.validate().is_ok());
    }

    #[test]
    fn raising_the_cap_lowers_a_wide_fan_fully() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[
            (BasicOp::Rotation, 20, 32),
            (BasicOp::PMult, 20, 32),
            (BasicOp::HAdd, 20, 32),
        ]);
        // Default cap truncates the fan of 32...
        let capped = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        assert!(capped.truncated > 0);
        // ...raising it lowers every repetition.
        let opts = CompileOptions {
            count_cap: 32,
            ..CompileOptions::default()
        };
        let full = compile_trace(&trace, &ctx, &opts).expect("fits");
        assert_eq!(full.truncated, 0);
        assert!(full.graph.validate().is_ok());
        assert_eq!(
            full.graph
                .count_ops(|op| matches!(op, GraphOp::Rotate { .. })),
            32
        );
        assert_eq!(
            full.graph
                .count_ops(|op| matches!(op, GraphOp::MulPlain { .. })),
            32
        );
    }

    /// Longest chain of `Add` nodes feeding `Add` nodes — the reduction
    /// depth.
    fn add_depth(g: &EvalGraph) -> usize {
        fn depth_of(g: &EvalGraph, n: NodeId, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(d) = memo[n.index()] {
                return d;
            }
            let node = g.node(n);
            let d = if matches!(node.op, GraphOp::Add) {
                1 + node
                    .inputs
                    .iter()
                    .map(|&v| depth_of(g, g.value(v).producer, memo))
                    .max()
                    .unwrap_or(0)
            } else {
                0
            };
            memo[n.index()] = Some(d);
            d
        }
        let mut memo = vec![None; g.nodes().len()];
        (0..g.nodes().len())
            .map(|i| depth_of(g, NodeId(i), &mut memo))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn fan_reduction_is_a_balanced_tree() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[(BasicOp::Rotation, 20, 8), (BasicOp::HAdd, 20, 8)]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        // 8 terms still need 7 adds, but in ⌈log₂8⌉ = 3 layers rather
        // than a 7-deep chain.
        assert_eq!(prog.graph.count_ops(|op| matches!(op, GraphOp::Add)), 7);
        assert_eq!(add_depth(&prog.graph), 3);
    }

    #[test]
    fn deep_mul_chain_respects_scale_budget() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[
            (BasicOp::CMult, 30, 4),
            (BasicOp::Rescale, 29, 4),
            (BasicOp::CMult, 28, 4),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        assert!(prog.graph.validate().is_ok());
        // Every live value stays within the decryption margin.
        for v in prog.graph.values().iter().filter(|v| !v.is_dead()) {
            let p = ctx.params();
            let total =
                f64::from(p.first_prime_bits) + v.level as f64 * f64::from(p.scale_prime_bits);
            assert!(
                v.scale_bits < total,
                "scale {} exceeds modulus {} at level {}",
                v.scale_bits,
                total,
                v.level
            );
        }
    }

    #[test]
    fn level_descents_follow_the_virtual_chain() {
        let ctx = CkksContext::new(CkksParams::small());
        let trace = trace_of(&[
            (BasicOp::Keyswitch, 44, 4),
            (BasicOp::HAdd, 44, 4),
            (BasicOp::Keyswitch, 32, 4),
            (BasicOp::HAdd, 32, 4),
            (BasicOp::Keyswitch, 8, 4),
            (BasicOp::HAdd, 8, 4),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("fits");
        assert!(prog.graph.validate().is_ok());
        assert!(prog
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, GraphOp::DropToLevel { .. })));
    }

    /// Parameter set whose modulus cannot fund a single squaring even
    /// from a fresh top-level input: 2·45 scale bits ≥ 36 + 1·40 live
    /// bits. PR 8's `make_room` proceeded anyway and produced a value
    /// past the modulus; the lowering must now refuse with a typed
    /// error.
    fn overflowing_params() -> CkksParams {
        let mut p = CkksParams::toy();
        p.n = 32;
        p.first_prime_bits = 36;
        p.scale_prime_bits = 40;
        p.chain_len = 2;
        p.scale = (1u64 << 45) as f64;
        p
    }

    #[test]
    fn unfundable_square_is_a_typed_overflow_not_a_silent_one() {
        let ctx = CkksContext::new(overflowing_params());
        let trace = trace_of(&[(BasicOp::CMult, 30, 1)]);
        let err = compile_trace(&trace, &ctx, &CompileOptions::default())
            .expect_err("2*45 scale bits cannot fit a 76-bit modulus");
        assert!(
            matches!(err, PlanError::ScaleOverflow { level: _, .. }),
            "expected ScaleOverflow, got {err:?}"
        );
    }

    #[test]
    fn defer_mode_keeps_one_dataflow_and_counts_exhaustion() {
        let ctx = CkksContext::new(overflowing_params());
        let trace = trace_of(&[(BasicOp::CMult, 30, 1)]);
        let opts = CompileOptions {
            exhaustion: Exhaustion::Defer,
            ..CompileOptions::default()
        };
        let prog = compile_trace(&trace, &ctx, &opts).expect("defer never errors");
        assert!(prog.exhausted >= 1);
        assert_eq!(prog.segments, 1);
        assert!(prog.graph.validate().is_ok());
    }
}
