//! `.pos` front end: lowers a flat [`OpTrace`] (the format
//! `sim::program::parse` produces) into an executable [`EvalGraph`].
//!
//! A `.pos` file is an op-count stream at *hardware* scale (ring degree
//! 2^16, virtual levels up to 57, repetition counts in the hundreds) —
//! there is no dataflow in the file. The lowering synthesises a
//! deterministic dataflow with the same operational shape, sized for the
//! executing context:
//!
//! * A **current value** `cur` accumulates the computation; rotation and
//!   keyswitch entries spread it into a **fan** of parallel terms
//!   (rotations by cycling step counts), `pmult` masks each term,
//!   `rescale` rescales each term, `hadd` reduces the fan back into
//!   `cur` — the BSGS diagonal-matvec shape.
//! * Repetition counts are capped at [`CompileOptions::count_cap`]
//!   (dropped work is reported in [`CompiledProgram::truncated`], never
//!   silently).
//! * Virtual levels are mapped onto the context's chain by ratio; level
//!   descents become `drop_to_level` nodes.
//! * A **pressure rule** keeps the tracked scale decryptable at every
//!   step: an operation that would push `log2(scale)` within
//!   [`SCALE_MARGIN_BITS`] of the live modulus bits forces an eager
//!   rescale, or — when no level is left — a **segment reset**: the
//!   current value is marked as a graph output and lowering restarts
//!   from a fresh top-level input ([`CompiledProgram::segments`] counts
//!   these).

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;

use crate::decompose::{BasicOp, OpTrace};
use crate::plan::graph::{EvalGraph, ValueId};

/// Decryption headroom: the tracked scale must stay this many bits below
/// the live modulus product.
pub const SCALE_MARGIN_BITS: f64 = 10.0;

/// Lowering knobs.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Per-entry repetition cap (`.pos` counts above this are truncated
    /// and reported).
    pub count_cap: u64,
    /// Rotation steps cycle through `1..=max_rotation_step`.
    pub max_rotation_step: i64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            count_cap: 8,
            max_rotation_step: 8,
        }
    }
}

/// A lowered `.pos` program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The executable dataflow graph.
    pub graph: EvalGraph,
    /// Operations the cap dropped (sum over entries of `count - emitted`).
    pub truncated: u64,
    /// Number of lowering segments (1 + resets forced by exhausted
    /// level/scale budget).
    pub segments: usize,
    /// Rotation steps the graph uses (generate these keys before
    /// executing).
    pub rotation_steps: Vec<i64>,
}

struct Lowering<'a> {
    g: EvalGraph,
    ctx: &'a CkksContext,
    opts: &'a CompileOptions,
    cur: ValueId,
    fan: Vec<ValueId>,
    pt_counter: usize,
    truncated: u64,
    segments: usize,
    rot_cursor: i64,
    default_bits: f64,
}

impl<'a> Lowering<'a> {
    fn new(ctx: &'a CkksContext, opts: &'a CompileOptions) -> Self {
        let default_bits = ctx.default_scale().log2();
        let mut g = EvalGraph::new(f64::from(ctx.params().scale_prime_bits));
        let cur = g.input(ctx.max_level(), default_bits);
        Self {
            g,
            ctx,
            opts,
            cur,
            fan: Vec::new(),
            pt_counter: 0,
            truncated: 0,
            segments: 1,
            rot_cursor: 0,
            default_bits,
        }
    }

    fn level(&self, v: ValueId) -> usize {
        self.g.value(v).level
    }

    fn sb(&self, v: ValueId) -> f64 {
        self.g.value(v).scale_bits
    }

    /// Would a value at `level` with `scale_bits` still decrypt?
    fn fits(&self, level: usize, scale_bits: f64) -> bool {
        let p = self.ctx.params();
        let total = f64::from(p.first_prime_bits) + level as f64 * f64::from(p.scale_prime_bits);
        scale_bits + SCALE_MARGIN_BITS < total
    }

    fn cap(&mut self, count: u64) -> u64 {
        let k = count.min(self.opts.count_cap);
        self.truncated += count - k;
        k
    }

    fn next_step(&mut self) -> i64 {
        self.rot_cursor = self.rot_cursor % self.opts.max_rotation_step + 1;
        self.rot_cursor
    }

    /// Encodes a fresh deterministic mask plaintext at `level`. Mask
    /// magnitudes sit near 0.1 so value growth (8-term reductions,
    /// squarings) never races the modulus even in deep programs — the
    /// pressure rule tracks scale bits, not message magnitude.
    fn plaintext_at(&mut self, level: usize) -> usize {
        let slots = 8.min(self.ctx.params().n / 2);
        let z: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(0.09 + 0.005 * ((self.pt_counter + i) % 8) as f64, 0.0))
            .collect();
        self.pt_counter += 1;
        let basis = self.ctx.level_basis(level);
        let pt = Plaintext::new(
            self.ctx
                .encoder()
                .encode_rns(&basis, &z, self.ctx.default_scale()),
            self.ctx.default_scale(),
        );
        self.g.intern_plaintext(pt)
    }

    /// Chain-reduces the fan into `cur` (no-op when the fan is empty).
    fn reduce(&mut self) {
        if self.fan.is_empty() {
            return;
        }
        let mut acc = self.fan[0];
        for i in 1..self.fan.len() {
            let t = self.fan[i];
            acc = self.g.add(acc, t);
        }
        self.fan.clear();
        self.cur = acc;
    }

    /// Exhausted level/scale budget: close the segment (mark `cur` as an
    /// output) and restart from a fresh top-level input.
    fn reset(&mut self) {
        debug_assert!(self.fan.is_empty(), "reset with a pending fan");
        self.g.mark_output(self.cur);
        self.cur = self.g.input(self.ctx.max_level(), self.default_bits);
        self.segments += 1;
    }

    /// Rescales every fan term once (uniform level/scale by
    /// construction).
    fn rescale_fan(&mut self) {
        let fan = std::mem::take(&mut self.fan);
        self.fan = fan.into_iter().map(|t| self.g.rescale(t)).collect();
    }

    /// Level descent requested by the virtual-level mapping.
    fn maybe_drop(&mut self, target: usize) {
        if self.fan.is_empty() && target < self.level(self.cur) {
            self.cur = self.g.drop_to_level(self.cur, target);
        }
    }

    /// Makes room on `cur` for an operation that adds `extra_bits` of
    /// scale. At most one segment reset; if the budget still doesn't fit
    /// afterwards the operation proceeds anyway (tiny parameter sets).
    fn make_room(&mut self, extra_bits: f64) {
        let mut reset_done = false;
        loop {
            let (lv, s) = (self.level(self.cur), self.sb(self.cur));
            if self.fits(lv, s + extra_bits) {
                return;
            }
            if lv > 0 && s > self.default_bits + 0.5 {
                self.cur = self.g.rescale(self.cur);
            } else if !reset_done {
                self.reset();
                reset_done = true;
            } else {
                return;
            }
        }
    }

    fn lower_entry(&mut self, op: BasicOp, target: usize, count: u64) {
        match op {
            BasicOp::Rotation | BasicOp::Keyswitch => {
                self.reduce();
                self.maybe_drop(target);
                let k = self.cap(count);
                self.fan = (0..k)
                    .map(|_| {
                        let s = self.next_step();
                        self.g.rotate(self.cur, s)
                    })
                    .collect();
            }
            BasicOp::PMult => {
                if self.fan.is_empty() {
                    self.maybe_drop(target);
                    let k = self.cap(count);
                    self.make_room(self.default_bits);
                    let lv = self.level(self.cur);
                    self.fan = (0..k)
                        .map(|_| {
                            let pt = self.plaintext_at(lv);
                            self.g.mul_plain(self.cur, pt)
                        })
                        .collect();
                } else {
                    // One mask per fan term keeps the fan uniform; excess
                    // repetitions are truncated.
                    let n = self.fan.len() as u64;
                    self.truncated += count.saturating_sub(n);
                    let (lv, s) = (self.level(self.fan[0]), self.sb(self.fan[0]));
                    if !self.fits(lv, s + self.default_bits) {
                        if lv > 0 && s > self.default_bits + 0.5 {
                            self.rescale_fan();
                        } else if lv == 0 {
                            // No scale room at the chain floor — close the
                            // segment rather than exceed the modulus.
                            self.reduce();
                            self.reset();
                        }
                    }
                    if self.fan.is_empty() {
                        // Segment reset: rebuild the fan from the fresh input.
                        let k = n.clamp(1, self.opts.count_cap);
                        let lvc = self.level(self.cur);
                        self.fan = (0..k)
                            .map(|_| {
                                let pt = self.plaintext_at(lvc);
                                self.g.mul_plain(self.cur, pt)
                            })
                            .collect();
                    } else {
                        let lv = self.level(self.fan[0]);
                        let fan = std::mem::take(&mut self.fan);
                        self.fan = fan
                            .into_iter()
                            .map(|t| {
                                let pt = self.plaintext_at(lv);
                                self.g.mul_plain(t, pt)
                            })
                            .collect();
                    }
                }
            }
            BasicOp::Rescale => {
                if !self.fan.is_empty() {
                    let (lv, s) = (self.level(self.fan[0]), self.sb(self.fan[0]));
                    if lv > 0 && s > self.default_bits + 0.5 {
                        self.rescale_fan();
                    }
                } else if self.level(self.cur) > 0 && self.sb(self.cur) > self.default_bits + 0.5 {
                    self.cur = self.g.rescale(self.cur);
                }
                // Already at default scale (or level 0): the request is
                // satisfied vacuously.
            }
            BasicOp::HAdd => {
                let k = self.cap(count);
                if self.fan.len() >= 2 {
                    self.reduce();
                } else {
                    self.reduce(); // fan of one → cur
                    for _ in 0..k.min(2) {
                        self.cur = self.g.add(self.cur, self.cur);
                    }
                }
            }
            BasicOp::CMult => {
                self.reduce();
                self.maybe_drop(target);
                let k = self.cap(count);
                for _ in 0..k {
                    let s = self.sb(self.cur);
                    self.make_room(s);
                    self.cur = self.g.square(self.cur);
                }
            }
            BasicOp::Moddown => {
                self.reduce();
                let k = self.cap(count) as usize;
                let lv = self.level(self.cur);
                let dropped = k.min(lv);
                if dropped > 0 {
                    self.cur = self.g.drop_to_level(self.cur, lv - dropped);
                }
            }
            BasicOp::Modup => {
                // Basis extension has no dataflow effect at this level.
            }
        }
    }

    fn finish(mut self) -> CompiledProgram {
        self.reduce();
        self.g.mark_output(self.cur);
        let rotation_steps = self.g.required_rotation_steps();
        CompiledProgram {
            graph: self.g,
            truncated: self.truncated,
            segments: self.segments,
            rotation_steps,
        }
    }
}

/// Lowers a parsed `.pos` trace into an executable graph for `ctx`.
pub fn compile_trace(trace: &OpTrace, ctx: &CkksContext, opts: &CompileOptions) -> CompiledProgram {
    let virt_max = trace
        .entries()
        .iter()
        .map(|(_, p, _)| p.components)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let max_level = ctx.max_level();
    let mut lowering = Lowering::new(ctx, opts);
    for &(op, params, count) in trace.entries() {
        let target = ((params.components as f64 / virt_max) * max_level as f64).ceil() as usize;
        let target = target.min(max_level);
        lowering.lower_entry(op, target, count);
    }
    lowering.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::OpParams;
    use he_ckks::params::CkksParams;

    fn trace_of(entries: &[(BasicOp, usize, u64)]) -> OpTrace {
        let mut t = OpTrace::new();
        for &(op, components, count) in entries {
            t.push(op, OpParams::new(1 << 16, components, 2), count);
        }
        t
    }

    #[test]
    fn bsgs_shape_produces_a_rotation_fan() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[
            (BasicOp::Rotation, 20, 8),
            (BasicOp::PMult, 20, 8),
            (BasicOp::Rescale, 20, 8),
            (BasicOp::HAdd, 20, 8),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default());
        assert!(prog.graph.validate().is_ok());
        assert_eq!(prog.rotation_steps, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(prog.segments, 1);
        assert_eq!(prog.graph.outputs().len(), 1);
        // 8 rotations of one source — prime hoisting material.
        assert_eq!(
            prog.graph
                .count_ops(|op| matches!(op, crate::plan::graph::GraphOp::Rotate { .. })),
            8
        );
    }

    #[test]
    fn counts_are_capped_and_reported() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[(BasicOp::Rotation, 14, 46), (BasicOp::HAdd, 14, 46)]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default());
        assert!(prog.truncated >= 38);
        assert!(prog.graph.validate().is_ok());
    }

    #[test]
    fn deep_mul_chain_respects_scale_budget() {
        let ctx = CkksContext::new(CkksParams::toy());
        let trace = trace_of(&[
            (BasicOp::CMult, 30, 4),
            (BasicOp::Rescale, 29, 4),
            (BasicOp::CMult, 28, 4),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default());
        assert!(prog.graph.validate().is_ok());
        // Every live value stays within the decryption margin.
        for v in prog.graph.values().iter().filter(|v| !v.is_dead()) {
            let p = ctx.params();
            let total =
                f64::from(p.first_prime_bits) + v.level as f64 * f64::from(p.scale_prime_bits);
            assert!(
                v.scale_bits < total,
                "scale {} exceeds modulus {} at level {}",
                v.scale_bits,
                total,
                v.level
            );
        }
    }

    #[test]
    fn level_descents_follow_the_virtual_chain() {
        let ctx = CkksContext::new(CkksParams::small());
        let trace = trace_of(&[
            (BasicOp::Keyswitch, 44, 4),
            (BasicOp::HAdd, 44, 4),
            (BasicOp::Keyswitch, 32, 4),
            (BasicOp::HAdd, 32, 4),
            (BasicOp::Keyswitch, 8, 4),
            (BasicOp::HAdd, 8, 4),
        ]);
        let prog = compile_trace(&trace, &ctx, &CompileOptions::default());
        assert!(prog.graph.validate().is_ok());
        assert!(prog
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, crate::plan::graph::GraphOp::DropToLevel { .. })));
    }
}
