//! The five-operator vocabulary and its count algebra.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// One of Poseidon's five reusable operators (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operator {
    /// Modular Addition — element-wise add with compare-and-correct.
    Ma,
    /// Modular Multiplication — element-wise multiply + Barrett reduce.
    Mm,
    /// Number Theoretic Transform (forward or inverse, counted together as
    /// the paper's tables do).
    Ntt,
    /// Coordinate-mapping Automorphism.
    Automorphism,
    /// Shared Barrett Reduction — the reduction datapath shared by MM and
    /// NTT (counted separately so the sharing ratio is visible).
    Sbt,
}

impl Operator {
    /// All operators, in display order.
    pub const ALL: [Operator; 5] = [
        Operator::Ma,
        Operator::Mm,
        Operator::Ntt,
        Operator::Automorphism,
        Operator::Sbt,
    ];
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operator::Ma => "MA",
            Operator::Mm => "MM",
            Operator::Ntt => "NTT/INTT",
            Operator::Automorphism => "Automorphism",
            Operator::Sbt => "SBT",
        };
        f.write_str(s)
    }
}

/// Element-level operator counts for one operation (or a whole workload).
///
/// Every count is in units of *element operations*: one MA count is one
/// modular addition of a single coefficient; one NTT count is one butterfly
/// input element processed for one phase. With `lanes` parallel lanes a
/// core retires `lanes` element operations per cycle — the conversion the
/// simulator applies.
///
/// # Examples
///
/// ```
/// use poseidon_core::OperatorCounts;
/// let a = OperatorCounts { ma: 10, ..OperatorCounts::ZERO };
/// let b = OperatorCounts { mm: 4, ..OperatorCounts::ZERO };
/// let c = a + b * 2;
/// assert_eq!(c.ma, 10);
/// assert_eq!(c.mm, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct OperatorCounts {
    /// Modular additions.
    pub ma: u64,
    /// Modular multiplications.
    pub mm: u64,
    /// NTT/INTT element-phase operations.
    pub ntt: u64,
    /// Automorphism element mappings.
    pub auto: u64,
    /// Shared Barrett reductions (issued by MM and NTT, plus standalone).
    pub sbt: u64,
}

impl OperatorCounts {
    /// The zero count.
    pub const ZERO: OperatorCounts = OperatorCounts {
        ma: 0,
        mm: 0,
        ntt: 0,
        auto: 0,
        sbt: 0,
    };

    /// Count for a given operator.
    pub fn get(&self, op: Operator) -> u64 {
        match op {
            Operator::Ma => self.ma,
            Operator::Mm => self.mm,
            Operator::Ntt => self.ntt,
            Operator::Automorphism => self.auto,
            Operator::Sbt => self.sbt,
        }
    }

    /// Whether a given operator is used at all — a Table I checkmark.
    pub fn uses(&self, op: Operator) -> bool {
        self.get(op) > 0
    }

    /// Total element operations across all operators.
    pub fn total(&self) -> u64 {
        Operator::ALL.iter().map(|&op| self.get(op)).sum()
    }
}

impl Add for OperatorCounts {
    type Output = OperatorCounts;
    fn add(self, o: OperatorCounts) -> OperatorCounts {
        OperatorCounts {
            ma: self.ma + o.ma,
            mm: self.mm + o.mm,
            ntt: self.ntt + o.ntt,
            auto: self.auto + o.auto,
            sbt: self.sbt + o.sbt,
        }
    }
}

impl AddAssign for OperatorCounts {
    fn add_assign(&mut self, o: OperatorCounts) {
        *self = *self + o;
    }
}

impl Mul<u64> for OperatorCounts {
    type Output = OperatorCounts;
    fn mul(self, k: u64) -> OperatorCounts {
        OperatorCounts {
            ma: self.ma * k,
            mm: self.mm * k,
            ntt: self.ntt * k,
            auto: self.auto * k,
            sbt: self.sbt * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra_is_componentwise() {
        let a = OperatorCounts {
            ma: 1,
            mm: 2,
            ntt: 3,
            auto: 4,
            sbt: 5,
        };
        let s = a + a;
        assert_eq!(s, a * 2);
        assert_eq!(s.total(), 30);
        let mut b = OperatorCounts::ZERO;
        b += a;
        assert_eq!(b, a);
    }

    #[test]
    fn uses_reflects_nonzero() {
        let a = OperatorCounts {
            ma: 1,
            ..OperatorCounts::ZERO
        };
        assert!(a.uses(Operator::Ma));
        assert!(!a.uses(Operator::Mm));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Operator::Ma.to_string(), "MA");
        assert_eq!(Operator::Ntt.to_string(), "NTT/INTT");
        assert_eq!(Operator::Sbt.to_string(), "SBT");
    }
}
