//! `HomomorphicOps` — the shared homomorphic-operation surface.
//!
//! Three executors expose the same CKKS basic operations with different
//! backends: the software [`Evaluator`], the trace-capturing
//! [`RecordingEvaluator`], and the operator-pool [`PoseidonMachine`].
//! Before this trait each duplicated its own ad-hoc method list; now a
//! workload written against `HomomorphicOps` runs unchanged on any of
//! them — the pattern the `tables metrics` report uses to drive one HELR
//! pipeline through both the evaluator and the machine.
//!
//! Methods take `&mut self` for the machine's sake (its pool mutates
//! per-call state); the evaluator backends simply ignore the mutability.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;

use crate::machine::PoseidonMachine;
use crate::recorder::RecordingEvaluator;

/// The basic-operation surface shared by every executor (paper Table I's
/// operation vocabulary, minus bootstrapping).
///
/// Every operation is specified by its fallible `try_` form — backends
/// implement only those — and the familiar panicking methods are provided
/// wrappers that format the [`EvalError`] (preserving the legacy panic
/// messages). Checked backends surface persistent datapath corruption as
/// [`EvalError::IntegrityFault`] through the same `try_` surface.
///
/// # Examples
///
/// ```no_run
/// use he_ckks::prelude::*;
/// use poseidon_core::{HomomorphicOps, PoseidonMachine};
///
/// fn double_and_spin<B: HomomorphicOps>(
///     b: &mut B,
///     ct: &Ciphertext,
///     keys: &KeySet,
/// ) -> Ciphertext {
///     let s = b.add(ct, ct);
///     b.rotate(&s, 1, keys)
/// }
/// ```
pub trait HomomorphicOps {
    /// Fallible HAdd, ct+ct.
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] / [`EvalError::LevelMismatch`] on
    /// operand mismatch; [`EvalError::IntegrityFault`] from checked
    /// backends.
    fn try_add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError>;

    /// Fallible subtraction (HAdd cost class).
    ///
    /// # Errors
    ///
    /// As [`try_add`](Self::try_add).
    fn try_sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError>;

    /// Fallible HAdd, ct+pt.
    ///
    /// # Errors
    ///
    /// As [`try_add`](Self::try_add).
    fn try_add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError>;

    /// Fallible PMult, ct·pt (scale multiplies; rescale afterwards).
    ///
    /// # Errors
    ///
    /// Reserved for [`EvalError::IntegrityFault`] from checked backends.
    fn try_mul_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError>;

    /// Fallible CMult with relinearisation.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] on unaligned operands (machine);
    /// [`EvalError::IntegrityFault`] from checked backends.
    fn try_mul(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError>;

    /// Fallible squaring (CMult cost class).
    ///
    /// # Errors
    ///
    /// As [`try_mul`](Self::try_mul).
    fn try_square(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError>;

    /// Fallible rescale.
    ///
    /// # Errors
    ///
    /// [`EvalError::RescaleAtLevelZero`] at level 0.
    fn try_rescale(&mut self, a: &Ciphertext) -> Result<Ciphertext, EvalError>;

    /// Fallible level drop by modulus truncation (no scale change).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] when `level` exceeds the current
    /// level.
    fn try_drop_to_level(&mut self, a: &Ciphertext, level: usize) -> Result<Ciphertext, EvalError>;

    /// HAdd, ct+ct.
    ///
    /// # Panics
    ///
    /// Panics on operand mismatch or escalated integrity fault.
    fn add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// HAdd cost class, subtraction.
    ///
    /// # Panics
    ///
    /// As [`add`](Self::add).
    fn sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// HAdd, ct+pt.
    ///
    /// # Panics
    ///
    /// As [`add`](Self::add).
    fn add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_add_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// PMult, ct·pt (scale multiplies; rescale afterwards).
    ///
    /// # Panics
    ///
    /// Panics on escalated integrity fault.
    fn mul_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_mul_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// CMult with relinearisation.
    ///
    /// # Panics
    ///
    /// As [`add`](Self::add).
    fn mul(&mut self, a: &Ciphertext, b: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_mul(a, b, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Squaring (CMult cost class).
    ///
    /// # Panics
    ///
    /// As [`mul`](Self::mul).
    fn square(&mut self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_square(a, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rescale: drops the chain's last prime and divides the scale.
    ///
    /// # Panics
    ///
    /// Panics at level 0.
    fn rescale(&mut self, a: &Ciphertext) -> Ciphertext {
        self.try_rescale(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Level drop by modulus truncation (no scale change).
    ///
    /// # Panics
    ///
    /// Panics when `level` exceeds the current level.
    fn drop_to_level(&mut self, a: &Ciphertext, level: usize) -> Ciphertext {
        self.try_drop_to_level(a, level)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible slot rotation.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] when no key for `steps` exists.
    fn try_rotate(
        &mut self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError>;

    /// Fallible slot conjugation.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingConjugationKey`] when the key is absent.
    fn try_conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError>;

    /// Fallible batch rotation of one ciphertext by every step in `steps`.
    ///
    /// The default implementation is a plain loop of [`try_rotate`];
    /// backends with a hoisted rotation engine (the evaluator, the
    /// machine) override it to pay the digit decomposition once for the
    /// whole batch.
    ///
    /// [`try_rotate`]: Self::try_rotate
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] for the first step without a key.
    fn try_rotate_many(
        &mut self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &KeySet,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        steps.iter().map(|&s| self.try_rotate(a, s, keys)).collect()
    }

    /// Slot rotation.
    ///
    /// # Panics
    ///
    /// Panics when the rotation key is missing.
    fn rotate(&mut self, a: &Ciphertext, steps: i64, keys: &KeySet) -> Ciphertext {
        self.try_rotate(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Batch slot rotation.
    ///
    /// # Panics
    ///
    /// Panics when any rotation key is missing.
    fn rotate_many(&mut self, a: &Ciphertext, steps: &[i64], keys: &KeySet) -> Vec<Ciphertext> {
        self.try_rotate_many(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Slot conjugation.
    ///
    /// # Panics
    ///
    /// Panics when the conjugation key is missing.
    fn conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_conjugate(a, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible ciphertext refresh through the full bootstrapping
    /// pipeline (`a` must be at level 0 — see
    /// [`Bootstrapper::try_bootstrap`]). The default implementation
    /// reports [`EvalError::BootstrapUnavailable`]; backends with a
    /// bootstrap path (the evaluator, the machine) override it.
    ///
    /// [`Bootstrapper::try_bootstrap`]: he_ckks::bootstrap::Bootstrapper::try_bootstrap
    ///
    /// # Errors
    ///
    /// [`EvalError::BootstrapUnavailable`] on backends without a
    /// bootstrap path; otherwise whatever the pipeline reports (missing
    /// rotation/conjugation keys, chain too short).
    fn try_bootstrap(
        &mut self,
        a: &Ciphertext,
        bs: &he_ckks::bootstrap::Bootstrapper,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let _ = (a, bs, keys);
        Err(EvalError::BootstrapUnavailable)
    }
}

impl HomomorphicOps for Evaluator {
    fn try_add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        Evaluator::try_add(self, a, b)
    }

    fn try_sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        Evaluator::try_sub(self, a, b)
    }

    fn try_add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        Evaluator::try_add_plain(self, a, pt)
    }

    fn try_mul_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        Ok(Evaluator::mul_plain(self, a, pt))
    }

    fn try_mul(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        Evaluator::try_mul(self, a, b, keys)
    }

    fn try_square(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        Evaluator::try_square(self, a, keys)
    }

    fn try_rescale(&mut self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        Evaluator::try_rescale(self, a)
    }

    fn try_drop_to_level(&mut self, a: &Ciphertext, level: usize) -> Result<Ciphertext, EvalError> {
        Evaluator::try_drop_to_level(self, a, level)
    }

    fn try_rotate(
        &mut self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        Evaluator::try_rotate(self, a, steps, keys)
    }

    fn try_rotate_many(
        &mut self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &KeySet,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        Evaluator::try_rotate_many(self, a, steps, keys)
    }

    fn try_conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        Evaluator::try_conjugate(self, a, keys)
    }

    fn try_bootstrap(
        &mut self,
        a: &Ciphertext,
        bs: &he_ckks::bootstrap::Bootstrapper,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        bs.try_bootstrap(self, keys, a)
    }
}

impl HomomorphicOps for RecordingEvaluator {
    fn try_add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_add(self, a, b)
    }

    fn try_sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_sub(self, a, b)
    }

    fn try_add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_add_plain(self, a, pt)
    }

    fn try_mul_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_mul_plain(self, a, pt)
    }

    fn try_mul(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_mul(self, a, b, keys)
    }

    fn try_square(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_square(self, a, keys)
    }

    fn try_rescale(&mut self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_rescale(self, a)
    }

    fn try_drop_to_level(&mut self, a: &Ciphertext, level: usize) -> Result<Ciphertext, EvalError> {
        // Free data movement — no hardware-trace entry, but the dataflow
        // graph records the descent.
        RecordingEvaluator::try_drop_to_level(self, a, level)
    }

    fn try_rotate(
        &mut self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_rotate(self, a, steps, keys)
    }

    fn try_conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        RecordingEvaluator::try_conjugate(self, a, keys)
    }
}

impl HomomorphicOps for PoseidonMachine {
    fn try_add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_hadd(self, a, b)
    }

    fn try_sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_hsub(self, a, b)
    }

    fn try_add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_add_plain(self, a, pt)
    }

    fn try_mul_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_pmult(self, a, pt)
    }

    fn try_mul(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_cmult(self, a, b, keys)
    }

    fn try_square(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_square(self, a, keys)
    }

    fn try_rescale(&mut self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_rescale(self, a)
    }

    fn try_drop_to_level(&mut self, a: &Ciphertext, level: usize) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_drop_to_level(self, a, level)
    }

    fn try_rotate(
        &mut self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_rotate(self, a, steps, keys)
    }

    fn try_rotate_many(
        &mut self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &KeySet,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        PoseidonMachine::try_rotate_many(self, a, steps, keys)
    }

    fn try_conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_conjugate(self, a, keys)
    }

    fn try_bootstrap(
        &mut self,
        a: &Ciphertext,
        bs: &he_ckks::bootstrap::Bootstrapper,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        PoseidonMachine::try_bootstrap(self, a, bs, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_ckks::encoding::Complex;
    use he_ckks::prelude::*;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x0535);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_rotation_key(1, &mut rng);
        (ctx, keys, rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        v: f64,
    ) -> Ciphertext {
        let z = vec![Complex::new(v, 0.0)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    fn decrypt_slot0(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> f64 {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder().decode_rns(pt.poly(), pt.scale(), 1)[0].re
    }

    /// One generic pipeline: (a + b)·a, rescaled, rotated by one slot.
    fn pipeline<B: HomomorphicOps>(
        backend: &mut B,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Ciphertext {
        let s = backend.add(a, b);
        let p = backend.mul(&s, a, keys);
        let r = backend.rescale(&p);
        backend.rotate(&r, 1, keys)
    }

    #[test]
    fn all_three_backends_agree_through_the_trait() {
        let (ctx, keys, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, 2.0);
        let b = encrypt(&ctx, &keys, &mut rng, 3.0);
        let expected = (2.0 + 3.0) * 2.0;

        let mut eval = Evaluator::new(&ctx);
        let mut rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
        let mut machine = PoseidonMachine::new(&ctx, 8, 1);

        // slot 0 rotated away; with a single replicated slot in toy params
        // the rotated slot still carries the value in slot 0's image, so
        // decode slot 0 after rotating back is unnecessary — the encoder
        // replicates a single value across all slots.
        for out in [
            pipeline(&mut eval, &a, &b, &keys),
            pipeline(&mut rec, &a, &b, &keys),
            pipeline(&mut machine, &a, &b, &keys),
        ] {
            let got = decrypt_slot0(&ctx, &keys, &out);
            assert!(
                (got - expected).abs() < 0.05,
                "backend disagreed: got {got}, expected {expected}"
            );
        }
        assert!(
            machine.usage().total() > 0,
            "machine counted no operator work"
        );
        assert_eq!(rec.trace().entries().len(), 4, "recorder missed ops");
    }

    #[test]
    fn rotate_many_agrees_with_single_rotations_on_every_backend() {
        let (ctx, mut keys, mut rng) = setup();
        keys.add_rotation_key(2, &mut rng);
        let a = encrypt(&ctx, &keys, &mut rng, 1.75);
        let steps = [1i64, 2];

        // Evaluator and recorder share the hoisted engine, whose outputs
        // are bit-identical to the per-call path.
        let mut eval = Evaluator::new(&ctx);
        let batch = HomomorphicOps::rotate_many(&mut eval, &a, &steps, &keys);
        for (&s, out) in steps.iter().zip(&batch) {
            assert_eq!(out, &HomomorphicOps::rotate(&mut eval, &a, s, &keys));
        }

        // The machine's hoisted dataflow uses a different (still
        // CRT-consistent) digit representative than its per-call rotate,
        // so agreement is at the decrypted-value level.
        let mut machine = PoseidonMachine::new(&ctx, 8, 1);
        let batch = machine.rotate_many(&a, &steps, &keys);
        for (&s, out) in steps.iter().zip(&batch) {
            let single = machine.rotate(&a, s, &keys);
            let got = decrypt_slot0(&ctx, &keys, out);
            let want = decrypt_slot0(&ctx, &keys, &single);
            assert!((got - want).abs() < 1e-3, "step {s}: {got} vs {want}");
        }
    }

    #[test]
    fn machine_hoisted_batch_saves_ntt_traffic() {
        let (ctx, mut keys, mut rng) = setup();
        for s in 2..=4i64 {
            keys.add_rotation_key(s, &mut rng);
        }
        let a = encrypt(&ctx, &keys, &mut rng, 0.5);
        let steps = [1i64, 2, 3, 4];

        let mut unhoisted = PoseidonMachine::new(&ctx, 8, 1);
        for &s in &steps {
            let _ = unhoisted.rotate(&a, s, &keys);
        }
        let mut hoisted = PoseidonMachine::new(&ctx, 8, 1);
        let _ = hoisted.rotate_many(&a, &steps, &keys);

        let (nh, nu) = (hoisted.usage().ntt, unhoisted.usage().ntt);
        assert!(
            nh * 2 <= nu,
            "hoisted NTT traffic {nh} not ≥2× below unhoisted {nu}"
        );
    }

    #[test]
    fn trait_try_rotate_reports_missing_key_on_every_backend() {
        let (ctx, keys, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, 1.0);
        let mut eval = Evaluator::new(&ctx);
        let mut rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
        let mut machine = PoseidonMachine::new(&ctx, 8, 1);

        fn probe<B: HomomorphicOps>(b: &mut B, a: &Ciphertext, keys: &KeySet) {
            assert_eq!(
                b.try_rotate(a, 5, keys),
                Err(EvalError::MissingRotationKey { steps: 5 })
            );
        }
        probe(&mut eval, &a, &keys);
        probe(&mut rec, &a, &keys);
        probe(&mut machine, &a, &keys);
        assert_eq!(
            rec.trace().entries().len(),
            0,
            "failed rotation must not be recorded"
        );
    }
}
