//! Trace recording: run a real CKKS computation and capture the basic-
//! operation stream it performed, ready for the accelerator model.
//!
//! This closes the loop between the functional library and the simulator:
//! instead of hand-writing a workload (as `poseidon-sim::workloads` does
//! for the paper's benchmarks), wrap the evaluator, run *your actual
//! program*, and simulate the recorded trace.

use std::cell::RefCell;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;

use crate::decompose::{BasicOp, OpParams, OpTrace};
use crate::plan::graph::{EvalGraph, GraphOp, GraphRecorder};

/// An evaluator wrapper that records every basic operation it executes.
///
/// # Examples
///
/// ```no_run
/// # use he_ckks::prelude::*;
/// # use poseidon_core::recorder::RecordingEvaluator;
/// # let ctx = CkksContext::new(CkksParams::toy());
/// # let mut rng = rand::thread_rng();
/// # let keys = KeySet::generate(&ctx, &mut rng);
/// # let ct: Ciphertext = unimplemented!();
/// let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
/// let sum = rec.add(&ct, &ct);
/// let prod = rec.mul(&ct, &ct, &keys);
/// let trace = rec.into_trace(); // feed to poseidon_sim::Simulator::run
/// ```
#[derive(Debug)]
pub struct RecordingEvaluator {
    inner: Evaluator,
    special: usize,
    dnum: usize,
    trace: RefCell<OpTrace>,
    graph: RefCell<GraphRecorder>,
}

impl RecordingEvaluator {
    /// Wraps an evaluator; `dnum` sets the keyswitch digit count recorded
    /// for the *hardware* cost of keyswitch-bearing operations (the
    /// software library itself uses per-prime digits).
    pub fn new(inner: Evaluator, dnum: usize) -> Self {
        let special = inner.context().special_basis().len();
        let rescale_bits = f64::from(inner.context().params().scale_prime_bits);
        Self {
            inner,
            special,
            dnum,
            trace: RefCell::new(OpTrace::new()),
            graph: RefCell::new(GraphRecorder::new(rescale_bits)),
        }
    }

    /// The wrapped evaluator (for operations that need no recording).
    pub fn inner(&self) -> &Evaluator {
        &self.inner
    }

    /// The recorded trace so far (cloned).
    pub fn trace(&self) -> OpTrace {
        self.trace.borrow().clone()
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> OpTrace {
        self.trace.into_inner()
    }

    /// Marks a previously produced ciphertext as a graph output (the
    /// values a later [`plan`](crate::plan) replay must reproduce).
    /// Returns `false` for a ciphertext this recorder never saw. Without
    /// any explicit mark, every leaf value becomes an output.
    pub fn mark_output(&self, ct: &Ciphertext) -> bool {
        self.graph.borrow_mut().mark_output(ct)
    }

    /// A snapshot of the dataflow graph captured so far (see
    /// [`EvalGraph`]). Unconsumed values become graph outputs unless
    /// [`mark_output`](Self::mark_output) was used.
    pub fn eval_graph(&self) -> EvalGraph {
        self.graph.borrow().snapshot()
    }

    /// Consumes the recorder, returning both recordings: the flat
    /// hardware trace and the SSA dataflow graph.
    pub fn into_recordings(self) -> (OpTrace, EvalGraph) {
        (self.trace.into_inner(), self.graph.into_inner().finish())
    }

    fn record(&self, op: BasicOp, ct: &Ciphertext) {
        let p = OpParams::with_dnum(
            ct.n(),
            ct.level() + 1,
            self.special,
            self.dnum.min(ct.level() + 1),
        );
        self.trace.borrow_mut().push(op, p, 1);
    }

    fn record_graph2(&self, op: GraphOp, a: &Ciphertext, b: &Ciphertext, out: &Ciphertext) {
        self.graph.borrow_mut().record_binary(op, a, b, out);
    }

    fn record_graph1(&self, op: GraphOp, a: &Ciphertext, out: &Ciphertext) {
        self.graph.borrow_mut().record_unary(op, a, out);
    }

    /// Recorded HAdd.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible HAdd: nothing is recorded when the operands are
    /// rejected (the operation never executed).
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalError`].
    pub fn try_add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_add(a, b)?;
        self.record(BasicOp::HAdd, a);
        self.record_graph2(GraphOp::Add, a, b, &out);
        Ok(out)
    }

    /// Recorded HAdd (subtraction variant — same operator cost).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible subtraction.
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalError`].
    pub fn try_sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_sub(a, b)?;
        self.record(BasicOp::HAdd, a);
        self.record_graph2(GraphOp::Sub, a, b, &out);
        Ok(out)
    }

    /// Recorded ciphertext-plaintext addition.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_add_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible ciphertext-plaintext addition.
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalError`].
    pub fn try_add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_add_plain(a, pt)?;
        self.record(BasicOp::HAdd, a);
        let idx = self.graph.borrow_mut().intern_plaintext(pt.clone());
        self.record_graph1(GraphOp::AddPlain { pt: idx }, a, &out);
        Ok(out)
    }

    /// Recorded PMult.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_mul_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible PMult (the evaluator's `mul_plain` itself cannot
    /// fail, so this only exists for surface symmetry and graph capture).
    ///
    /// # Errors
    ///
    /// Currently infallible.
    pub fn try_mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        let out = self.inner.mul_plain(a, pt);
        self.record(BasicOp::PMult, a);
        let idx = self.graph.borrow_mut().intern_plaintext(pt.clone());
        self.record_graph1(GraphOp::MulPlain { pt: idx }, a, &out);
        Ok(out)
    }

    /// Recorded CMult (with relinearisation).
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_mul(a, b, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible CMult.
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalError`].
    pub fn try_mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_mul(a, b, keys)?;
        self.record(BasicOp::CMult, a);
        self.record_graph2(GraphOp::Mul, a, b, &out);
        Ok(out)
    }

    /// Recorded squaring (CMult cost class).
    pub fn square(&self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_square(a, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible squaring.
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalError`].
    pub fn try_square(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_square(a, keys)?;
        self.record(BasicOp::CMult, a);
        self.record_graph1(GraphOp::Square, a, &out);
        Ok(out)
    }

    /// Recorded Rescale.
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        self.try_rescale(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible Rescale.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError::RescaleAtLevelZero`] from the evaluator.
    pub fn try_rescale(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_rescale(a)?;
        self.record(BasicOp::Rescale, a);
        self.record_graph1(GraphOp::Rescale, a, &out);
        Ok(out)
    }

    /// Recorded fallible level drop. The flat trace skips it (free data
    /// movement, no hardware op), but the dataflow graph needs the node
    /// so a planned replay reproduces the level descent.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] when `level` exceeds the current one.
    pub fn try_drop_to_level(&self, a: &Ciphertext, level: usize) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_drop_to_level(a, level)?;
        self.record_graph1(GraphOp::DropToLevel { level }, a, &out);
        Ok(out)
    }

    /// Recorded Rotation.
    pub fn rotate(&self, a: &Ciphertext, steps: i64, keys: &KeySet) -> Ciphertext {
        self.try_rotate(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible rotation: nothing is recorded when the key is
    /// missing (the operation never executed).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError::MissingRotationKey`] from the evaluator.
    pub fn try_rotate(
        &self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_rotate(a, steps, keys)?;
        self.record(BasicOp::Rotation, a);
        self.record_graph1(GraphOp::Rotate { steps }, a, &out);
        Ok(out)
    }

    /// Recorded conjugation (Rotation cost class).
    pub fn conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_conjugate(a, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Recorded fallible conjugation.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError::MissingConjugationKey`] from the evaluator.
    pub fn try_conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        let out = self.inner.try_conjugate(a, keys)?;
        self.record(BasicOp::Rotation, a);
        self.record_graph1(GraphOp::Conjugate, a, &out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_ckks::encoding::Complex;
    use he_ckks::prelude::*;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7EC0);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_rotation_key(1, &mut rng);
        (ctx, keys, rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        v: f64,
    ) -> Ciphertext {
        let z = vec![Complex::new(v, 0.0)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    #[test]
    fn records_the_operations_it_executes() {
        let (ctx, keys, mut rng) = setup();
        let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
        let a = encrypt(&ctx, &keys, &mut rng, 2.0);
        let b = encrypt(&ctx, &keys, &mut rng, 3.0);
        let s = rec.add(&a, &b);
        let p = rec.mul(&s, &a, &keys);
        let r = rec.rescale(&p);
        let _ = rec.rotate(&r, 1, &keys);
        let trace = rec.into_trace();
        let ops: Vec<BasicOp> = trace.entries().iter().map(|(op, _, _)| *op).collect();
        assert_eq!(
            ops,
            vec![
                BasicOp::HAdd,
                BasicOp::CMult,
                BasicOp::Rescale,
                BasicOp::Rotation
            ]
        );
        // Levels were captured per entry: rescale ran at the pre-drop level.
        assert_eq!(trace.entries()[2].1.components, a.level() + 1);
        assert_eq!(trace.entries()[3].1.components, a.level());
    }

    #[test]
    fn recorded_results_match_unrecorded_evaluator() {
        let (ctx, keys, mut rng) = setup();
        let eval = Evaluator::new(&ctx);
        let rec = RecordingEvaluator::new(eval.clone(), 1);
        let a = encrypt(&ctx, &keys, &mut rng, 1.5);
        let b = encrypt(&ctx, &keys, &mut rng, -0.5);
        assert_eq!(rec.add(&a, &b), eval.add(&a, &b));
        assert_eq!(rec.mul(&a, &b, &keys), eval.mul(&a, &b, &keys));
    }

    #[test]
    fn dnum_is_clamped_to_available_components() {
        let (ctx, keys, mut rng) = setup();
        let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 99);
        let a = encrypt(&ctx, &keys, &mut rng, 1.0);
        let _ = rec.mul(&a, &a, &keys);
        let trace = rec.into_trace();
        assert!(trace.entries()[0].1.dnum <= trace.entries()[0].1.components);
    }
}
