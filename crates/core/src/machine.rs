//! The Poseidon functional machine: executes real CKKS basic operations
//! end-to-end through the five pooled operator cores.
//!
//! This is the "functional simulation" tier of the reproduction: the same
//! datapath structure as the hardware (Fig. 2) — eval-resident operands,
//! MA/MM/NTT/Automorphism/SBT cores time-multiplexed, keyswitch as
//! lift → NTT → key product → accumulate → Moddown — operating on genuine
//! ciphertexts. Results decrypt correctly (validated against the
//! `he-ckks` evaluator), and the pool's usage counters give the exact
//! operator mix each operation consumed.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::keys::{KeySet, KeySwitchKey};
use he_rns::{Form, RnsBasis, RnsPoly};

use crate::operator::OperatorCounts;
use crate::pool::OperatorPool;

/// A functional Poseidon executor bound to a CKKS context.
///
/// # Examples
///
/// See `tests/machine.rs` and the `operator_reuse` example — typical use
/// is `machine.cmult(&a, &b, &keys)` followed by normal decryption.
#[derive(Debug)]
pub struct PoseidonMachine {
    ctx: CkksContext,
    pool: OperatorPool,
}

impl PoseidonMachine {
    /// Builds a machine with `lanes` vector lanes and NTT fusion degree
    /// `fusion_k` for the given context.
    pub fn new(ctx: &CkksContext, lanes: usize, fusion_k: u32) -> Self {
        Self {
            ctx: ctx.clone(),
            pool: OperatorPool::new(ctx.n(), lanes, fusion_k),
        }
    }

    /// Cumulative operator usage across everything executed so far.
    pub fn usage(&self) -> OperatorCounts {
        self.pool.usage()
    }

    /// Resets the usage counters.
    pub fn reset_usage(&mut self) {
        self.pool.reset_usage();
    }

    /// Direct access to the pool (for custom dataflows).
    pub fn pool_mut(&mut self) -> &mut OperatorPool {
        &mut self.pool
    }

    // ---- residue-level helpers ------------------------------------------

    fn ntt_poly(&mut self, p: &RnsPoly) -> RnsPoly {
        assert_eq!(p.form(), Form::Coeff);
        let residues = p
            .all_residues()
            .iter()
            .zip(p.basis().primes())
            .map(|(r, &q)| {
                let mut d = r.clone();
                self.pool.ntt(&mut d, q);
                d
            })
            .collect();
        RnsPoly::from_residues(p.basis(), residues, Form::Eval)
    }

    fn intt_poly(&mut self, p: &RnsPoly) -> RnsPoly {
        assert_eq!(p.form(), Form::Eval);
        let residues = p
            .all_residues()
            .iter()
            .zip(p.basis().primes())
            .map(|(r, &q)| {
                let mut d = r.clone();
                self.pool.intt(&mut d, q);
                d
            })
            .collect();
        RnsPoly::from_residues(p.basis(), residues, Form::Coeff)
    }

    fn add_poly(&mut self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        assert_eq!(a.basis(), b.basis());
        assert_eq!(a.form(), b.form());
        let residues = (0..a.level_count())
            .map(|j| {
                self.pool
                    .ma(a.residues(j), b.residues(j), a.basis().primes()[j])
            })
            .collect();
        RnsPoly::from_residues(a.basis(), residues, a.form())
    }

    /// [`add_poly`](Self::add_poly) through the MA core's retire-boundary
    /// sum check, with the detect → retry-once → escalate policy applied
    /// per residue limb.
    fn add_poly_checked(&mut self, a: &RnsPoly, b: &RnsPoly) -> Result<RnsPoly, EvalError> {
        assert_eq!(a.basis(), b.basis());
        assert_eq!(a.form(), b.form());
        let mut residues = Vec::with_capacity(a.level_count());
        for j in 0..a.level_count() {
            let q = a.basis().primes()[j];
            let r = match self.pool.ma_checked(a.residues(j), b.residues(j), q) {
                Ok(r) => r,
                Err(_) => {
                    he_ckks::integrity::note_detected();
                    match self.pool.ma_checked(a.residues(j), b.residues(j), q) {
                        Ok(r) => {
                            he_ckks::integrity::note_retried();
                            r
                        }
                        Err(_) => {
                            he_ckks::integrity::note_escalated();
                            return Err(EvalError::IntegrityFault {
                                site: "pool.retire",
                            });
                        }
                    }
                }
            };
            residues.push(r);
        }
        Ok(RnsPoly::from_residues(a.basis(), residues, a.form()))
    }

    /// Subtraction counterpart of
    /// [`add_poly_checked`](Self::add_poly_checked).
    fn sub_poly_checked(&mut self, a: &RnsPoly, b: &RnsPoly) -> Result<RnsPoly, EvalError> {
        assert_eq!(a.basis(), b.basis());
        let mut residues = Vec::with_capacity(a.level_count());
        for j in 0..a.level_count() {
            let q = a.basis().primes()[j];
            let r = match self.pool.sub_checked(a.residues(j), b.residues(j), q) {
                Ok(r) => r,
                Err(_) => {
                    he_ckks::integrity::note_detected();
                    match self.pool.sub_checked(a.residues(j), b.residues(j), q) {
                        Ok(r) => {
                            he_ckks::integrity::note_retried();
                            r
                        }
                        Err(_) => {
                            he_ckks::integrity::note_escalated();
                            return Err(EvalError::IntegrityFault {
                                site: "pool.retire",
                            });
                        }
                    }
                }
            };
            residues.push(r);
        }
        Ok(RnsPoly::from_residues(a.basis(), residues, a.form()))
    }

    fn sub_poly(&mut self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        assert_eq!(a.basis(), b.basis());
        let residues = (0..a.level_count())
            .map(|j| {
                self.pool
                    .sub(a.residues(j), b.residues(j), a.basis().primes()[j])
            })
            .collect();
        RnsPoly::from_residues(a.basis(), residues, a.form())
    }

    fn mul_poly(&mut self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        assert_eq!(a.form(), Form::Eval);
        assert_eq!(b.form(), Form::Eval);
        let residues = (0..a.level_count())
            .map(|j| {
                self.pool
                    .mm(a.residues(j), b.residues(j), a.basis().primes()[j])
            })
            .collect();
        RnsPoly::from_residues(a.basis(), residues, Form::Eval)
    }

    fn auto_poly(&mut self, a: &RnsPoly, g: u64) -> RnsPoly {
        assert_eq!(a.form(), Form::Coeff);
        let residues = (0..a.level_count())
            .map(|j| {
                self.pool
                    .automorphism(a.residues(j), g, a.basis().primes()[j])
            })
            .collect();
        RnsPoly::from_residues(a.basis(), residues, Form::Coeff)
    }

    /// Evaluation-domain automorphism: one index-permutation pass through
    /// the Automorphism core per residue (no NTT, no sign logic).
    fn auto_eval_poly(&mut self, a: &RnsPoly, perm: &[usize]) -> RnsPoly {
        assert_eq!(a.form(), Form::Eval);
        let residues = (0..a.level_count())
            .map(|j| self.pool.automorphism_eval(a.residues(j), perm))
            .collect();
        RnsPoly::from_residues(a.basis(), residues, Form::Eval)
    }

    // ---- basic operations ------------------------------------------------

    /// HAdd: pure MA traffic on both components.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales are incompatible.
    pub fn hadd(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_hadd(a, b).unwrap_or_else(|e| match e {
            EvalError::LevelMismatch { .. } => panic!("align levels before the machine"),
            other => panic!("{other}"),
        })
    }

    /// Fallible [`hadd`](Self::hadd): the MA cores run with the
    /// retire-boundary sum check; a detection is recomputed once and a
    /// persistent fault escalates instead of panicking.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] on unaligned operands,
    /// [`EvalError::IntegrityFault`] on persistent retire-check failure.
    pub fn try_hadd(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.level() != b.level() {
            return Err(EvalError::LevelMismatch {
                a: a.level(),
                b: b.level(),
            });
        }
        he_ckks::integrity::note_checked();
        Ok(Ciphertext::new(
            self.add_poly_checked(a.c0(), b.c0())?,
            self.add_poly_checked(a.c1(), b.c1())?,
            a.scale(),
        ))
    }

    /// Drops a ciphertext to a lower level by modulus truncation — a pure
    /// data movement, no operator-core traffic.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the current level.
    pub fn drop_to_level(&mut self, ct: &Ciphertext, level: usize) -> Ciphertext {
        self.try_drop_to_level(ct, level)
            .unwrap_or_else(|_| panic!("cannot raise level by truncation"))
    }

    /// Fallible [`drop_to_level`](Self::drop_to_level).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] if `level` exceeds the current level.
    pub fn try_drop_to_level(
        &mut self,
        ct: &Ciphertext,
        level: usize,
    ) -> Result<Ciphertext, EvalError> {
        if level > ct.level() {
            return Err(EvalError::LevelMismatch {
                a: ct.level(),
                b: level,
            });
        }
        if level == ct.level() {
            return Ok(ct.clone());
        }
        Ok(Ciphertext::new(
            ct.c0().truncate_basis(level + 1),
            ct.c1().truncate_basis(level + 1),
            ct.scale(),
        ))
    }

    /// HSub: subtraction on both components (HAdd operator cost class).
    ///
    /// # Panics
    ///
    /// Panics if levels differ.
    pub fn hsub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_hsub(a, b).unwrap_or_else(|e| match e {
            EvalError::LevelMismatch { .. } => panic!("align levels before the machine"),
            other => panic!("{other}"),
        })
    }

    /// Fallible [`hsub`](Self::hsub); see [`try_hadd`](Self::try_hadd)
    /// for the error contract.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] on unaligned operands,
    /// [`EvalError::IntegrityFault`] on persistent retire-check failure.
    pub fn try_hsub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.level() != b.level() {
            return Err(EvalError::LevelMismatch {
                a: a.level(),
                b: b.level(),
            });
        }
        he_ckks::integrity::note_checked();
        Ok(Ciphertext::new(
            self.sub_poly_checked(a.c0(), b.c0())?,
            self.sub_poly_checked(a.c1(), b.c1())?,
            a.scale(),
        ))
    }

    /// HAdd ct+pt: adds `m` to `c_0` only, through the MA core.
    pub fn add_plain(&mut self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_add_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_plain`](Self::add_plain) through the checked MA
    /// core.
    ///
    /// # Errors
    ///
    /// [`EvalError::IntegrityFault`] on persistent retire-check failure.
    pub fn try_add_plain(
        &mut self,
        a: &Ciphertext,
        pt: &Plaintext,
    ) -> Result<Ciphertext, EvalError> {
        he_ckks::integrity::note_checked();
        let m = pt.poly().truncate_basis(a.level() + 1);
        Ok(Ciphertext::new(
            self.add_poly_checked(a.c0(), &m)?,
            a.c1().clone(),
            a.scale(),
        ))
    }

    /// PMult: NTT the operands, MM, INTT back (scale multiplies).
    pub fn pmult(&mut self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let m = self.ntt_poly(&pt.poly().truncate_basis(a.level() + 1));
        let c0 = {
            let e = self.ntt_poly(a.c0());
            let p = self.mul_poly(&e, &m);
            self.intt_poly(&p)
        };
        let c1 = {
            let e = self.ntt_poly(a.c1());
            let p = self.mul_poly(&e, &m);
            self.intt_poly(&p)
        };
        Ciphertext::new(c0, c1, a.scale() * pt.scale())
    }

    /// The keyswitch dataflow on machine cores: per digit, exact lift of
    /// `[d]_{q_j}` into the extended basis, NTT, key product, MA
    /// accumulate; then Moddown through the MA/MM cascade (Fig. 4).
    pub fn keyswitch(&mut self, d: &RnsPoly, key: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        let level = d.level_count() - 1;
        let ext = self.ctx.level_basis(level).concat(self.ctx.special_basis());
        let mut acc0: Option<RnsPoly> = None;
        let mut acc1: Option<RnsPoly> = None;
        for j in 0..=level {
            // Exact single-prime lift (hardware: the Modup unit's
            // reduction path — one SBT per element per target prime).
            let t = d.residues(j);
            let residues: Vec<Vec<u64>> = ext
                .primes()
                .iter()
                .map(|&f| t.iter().map(|&v| v % f).collect())
                .collect();
            let lifted = RnsPoly::from_residues(&ext, residues, Form::Coeff);
            let lifted = self.ntt_poly(&lifted);
            let (kb, ka) = key.sliced(&self.ctx, j, level);
            let kb = self.ntt_poly(&kb);
            let ka = self.ntt_poly(&ka);
            let p0 = self.mul_poly(&lifted, &kb);
            let p1 = self.mul_poly(&lifted, &ka);
            acc0 = Some(match acc0 {
                None => p0,
                Some(a) => self.add_poly(&a, &p0),
            });
            acc1 = Some(match acc1 {
                None => p1,
                Some(a) => self.add_poly(&a, &p1),
            });
        }
        let a0 = self.intt_poly(&acc0.expect("level ≥ 0"));
        let a1 = self.intt_poly(&acc1.expect("level ≥ 0"));
        (self.moddown(&a0, level + 1), self.moddown(&a1, level + 1))
    }

    /// Moddown (Eq. 2) through the MA/MM cascade: RNSconv of the special
    /// residues into the chain basis, subtract, scale by `P⁻¹`.
    pub fn moddown(&mut self, a: &RnsPoly, q_len: usize) -> RnsPoly {
        assert_eq!(a.form(), Form::Coeff);
        let total = a.level_count();
        assert!(q_len >= 1 && q_len < total);
        let q_basis = a.basis().prefix(q_len);
        let p_primes = a.basis().primes()[q_len..].to_vec();
        let p_basis = RnsBasis::new(a.basis().n(), p_primes);

        // RNSconv (Eq. 1) on the cascade: t_j = [a_j · q̂_j⁻¹] via the MM
        // core, then per target prime an MM·(q̂_j mod p) + MA accumulate.
        let hat_inv = p_basis.qhat_inv_mod_self();
        let hats = p_basis.qhat_mod_other(&q_basis);
        let t: Vec<Vec<u64>> = (0..p_basis.len())
            .map(|j| {
                self.pool
                    .mm_scalar(a.residues(q_len + j), hat_inv[j], p_basis.primes()[j])
            })
            .collect();
        let conv_residues: Vec<Vec<u64>> = (0..q_basis.len())
            .map(|i| {
                let q = q_basis.primes()[i];
                let mut acc = vec![0u64; a.basis().n()];
                for (j, tj) in t.iter().enumerate() {
                    // t_j is reduced mod p_j, which can exceed q_i: reduce
                    // into the target prime's range before the MM core
                    // (hardware: the cascade's input SBT stage).
                    let tj_q: Vec<u64> = tj.iter().map(|&v| v % q).collect();
                    let term = self.pool.mm_scalar(&tj_q, hats[i][j], q);
                    self.pool.ma_acc(&mut acc, &term, q);
                }
                acc
            })
            .collect();
        let conv = RnsPoly::from_residues(&q_basis, conv_residues, Form::Coeff);

        let a_q = RnsPoly::from_residues(&q_basis, a.all_residues()[..q_len].to_vec(), Form::Coeff);
        let diff = self.sub_poly(&a_q, &conv);
        let p_inv = p_basis.product_inv_mod_other(&q_basis);
        let residues = (0..q_len)
            .map(|i| {
                self.pool
                    .mm_scalar(diff.residues(i), p_inv[i], q_basis.primes()[i])
            })
            .collect();
        RnsPoly::from_residues(&q_basis, residues, Form::Coeff)
    }

    /// CMult with relinearisation, entirely on machine cores.
    pub fn cmult(&mut self, a: &Ciphertext, b: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_cmult(a, b, keys).unwrap_or_else(|e| match e {
            EvalError::LevelMismatch { .. } => panic!("align levels before the machine"),
            other => panic!("{other}"),
        })
    }

    /// Fallible [`cmult`](Self::cmult).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] on unaligned operands; reserved for
    /// [`EvalError::IntegrityFault`] under checked execution.
    pub fn try_cmult(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        if a.level() != b.level() {
            return Err(EvalError::LevelMismatch {
                a: a.level(),
                b: b.level(),
            });
        }
        let a0 = self.ntt_poly(a.c0());
        let a1 = self.ntt_poly(a.c1());
        let b0 = self.ntt_poly(b.c0());
        let b1 = self.ntt_poly(b.c1());
        let d0 = {
            let p = self.mul_poly(&a0, &b0);
            self.intt_poly(&p)
        };
        let d1 = {
            let x = self.mul_poly(&a0, &b1);
            let y = self.mul_poly(&a1, &b0);
            let s = self.add_poly(&x, &y);
            self.intt_poly(&s)
        };
        let d2 = {
            let p = self.mul_poly(&a1, &b1);
            self.intt_poly(&p)
        };
        let (k0, k1) = self.keyswitch(&d2, keys.relin());
        Ok(Ciphertext::new(
            self.add_poly(&d0, &k0),
            self.add_poly(&d1, &k1),
            a.scale() * b.scale(),
        ))
    }

    /// Squaring, executed as [`cmult`](Self::cmult) of `a` with itself.
    pub fn square(&mut self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.cmult(a, a, keys)
    }

    /// Fallible [`square`](Self::square).
    ///
    /// # Errors
    ///
    /// See [`try_cmult`](Self::try_cmult).
    pub fn try_square(&mut self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        self.try_cmult(a, a, keys)
    }

    /// Rotation: HFAuto on both components, then keyswitch back to `s`.
    ///
    /// # Panics
    ///
    /// Panics if the rotation key is missing.
    pub fn rotate(&mut self, a: &Ciphertext, steps: i64, keys: &KeySet) -> Ciphertext {
        self.try_rotate(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`rotate`](Self::rotate): returns
    /// [`EvalError::MissingRotationKey`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] when no Galois key for `steps`
    /// has been generated.
    pub fn try_rotate(
        &mut self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let g = keys.galois_element(steps);
        let key = keys
            .galois_key(g)
            .ok_or(EvalError::MissingRotationKey { steps })?;
        let t0 = self.auto_poly(a.c0(), g);
        let t1 = self.auto_poly(a.c1(), g);
        let (k0, k1) = self.keyswitch(&t1, key);
        Ok(Ciphertext::new(self.add_poly(&t0, &k0), k1, a.scale()))
    }

    /// Hoisted batch rotation (Halevi–Shoup): the digit lift + forward
    /// NTTs of `c_1` run once on the machine cores and serve every step in
    /// `steps`; each rotation then costs one coefficient automorphism of
    /// `c_0`, an evaluation-domain index permutation of the hoisted digits
    /// through the Automorphism core, the key products, and a Moddown.
    ///
    /// The key slices come from the eval-form cache when present — the
    /// paper keeps keyswitch keys HBM-resident in evaluation
    /// representation (§IV-C), so no NTT-core traffic is charged for key
    /// material. [`rotate`](Self::rotate) keeps the unhoisted per-call
    /// dataflow whose operator mix matches Table I exactly.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] for the first step without a
    /// Galois key; keys are resolved before any core traffic happens.
    pub fn try_rotate_many(
        &mut self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &KeySet,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        let resolved: Vec<(u64, &KeySwitchKey)> = steps
            .iter()
            .map(|&s| {
                let g = keys.galois_element(s);
                keys.galois_key(g)
                    .map(|k| (g, k))
                    .ok_or(EvalError::MissingRotationKey { steps: s })
            })
            .collect::<Result<_, _>>()?;
        if resolved.is_empty() {
            return Ok(Vec::new());
        }
        let level = a.level();
        let ext = self.ctx.level_basis(level).concat(self.ctx.special_basis());
        // Hoist: lift + forward-NTT each digit of c1 exactly once.
        let digits: Vec<RnsPoly> = (0..=level)
            .map(|j| {
                let t = a.c1().residues(j);
                let residues: Vec<Vec<u64>> = ext
                    .primes()
                    .iter()
                    .map(|&f| t.iter().map(|&v| v % f).collect())
                    .collect();
                let lifted = RnsPoly::from_residues(&ext, residues, Form::Coeff);
                self.ntt_poly(&lifted)
            })
            .collect();
        let mut out = Vec::with_capacity(resolved.len());
        for (g, key) in resolved {
            let perm = he_ntt::galois_permutation(self.ctx.n(), g);
            let t0 = self.auto_poly(a.c0(), g);
            let mut acc0: Option<RnsPoly> = None;
            let mut acc1: Option<RnsPoly> = None;
            for (j, digit) in digits.iter().enumerate() {
                let rotated = self.auto_eval_poly(digit, &perm);
                let cached = key.eval_sliced(&self.ctx, j, level);
                let (kb, ka) = match cached {
                    Some(pair) => pair,
                    None => {
                        let (kb, ka) = key.sliced(&self.ctx, j, level);
                        (self.ntt_poly(&kb), self.ntt_poly(&ka))
                    }
                };
                let p0 = self.mul_poly(&rotated, &kb);
                let p1 = self.mul_poly(&rotated, &ka);
                acc0 = Some(match acc0 {
                    None => p0,
                    Some(acc) => self.add_poly(&acc, &p0),
                });
                acc1 = Some(match acc1 {
                    None => p1,
                    Some(acc) => self.add_poly(&acc, &p1),
                });
            }
            let a0 = self.intt_poly(&acc0.expect("level ≥ 0"));
            let a1 = self.intt_poly(&acc1.expect("level ≥ 0"));
            let k0 = self.moddown(&a0, level + 1);
            let k1 = self.moddown(&a1, level + 1);
            out.push(Ciphertext::new(self.add_poly(&t0, &k0), k1, a.scale()));
        }
        Ok(out)
    }

    /// Panicking wrapper over [`try_rotate_many`](Self::try_rotate_many).
    ///
    /// # Panics
    ///
    /// Panics if any rotation key is missing.
    pub fn rotate_many(&mut self, a: &Ciphertext, steps: &[i64], keys: &KeySet) -> Vec<Ciphertext> {
        self.try_rotate_many(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Conjugation (rotation cost class): the conjugation automorphism on
    /// both components, then keyswitch back to `s`.
    ///
    /// # Panics
    ///
    /// Panics if the conjugation key is missing.
    pub fn conjugate(&mut self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_conjugate(a, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`conjugate`](Self::conjugate).
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingConjugationKey`] when the conjugation key has
    /// not been generated.
    pub fn try_conjugate(
        &mut self,
        a: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let g = keys.conjugation_element();
        let key = keys.galois_key(g).ok_or(EvalError::MissingConjugationKey)?;
        let t0 = self.auto_poly(a.c0(), g);
        let t1 = self.auto_poly(a.c1(), g);
        let (k0, k1) = self.keyswitch(&t1, key);
        Ok(Ciphertext::new(self.add_poly(&t0, &k0), k1, a.scale()))
    }

    /// Fallible ciphertext refresh: runs the full bootstrapping pipeline
    /// (ModRaise → SubSum → CoeffToSlot → EvalMod → SlotToCoeff) on a
    /// level-0 ciphertext. The pipeline itself is orchestrated by the
    /// software [`Bootstrapper`] over a scheme-level evaluator on this
    /// machine's context — the paper's accelerator likewise reuses the
    /// basic-op datapath for bootstrapping rather than dedicating one.
    ///
    /// [`Bootstrapper`]: he_ckks::bootstrap::Bootstrapper
    ///
    /// # Errors
    ///
    /// Whatever the pipeline reports: missing rotation/conjugation keys
    /// for the bootstrap schedule, or `RescaleAtLevelZero` when the
    /// modulus chain is too short for the pipeline's depth.
    pub fn try_bootstrap(
        &mut self,
        a: &Ciphertext,
        bs: &he_ckks::bootstrap::Bootstrapper,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let eval = Evaluator::new(&self.ctx);
        bs.try_bootstrap(&eval, keys, a)
    }

    /// Rescale through the MA/MM cascade: subtract the last component's
    /// lifted residues and scale by `q_l⁻¹` per remaining prime.
    pub fn rescale(&mut self, a: &Ciphertext) -> Ciphertext {
        self.try_rescale(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`rescale`](Self::rescale).
    ///
    /// # Errors
    ///
    /// [`EvalError::RescaleAtLevelZero`] at level 0.
    pub fn try_rescale(&mut self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.level() == 0 {
            return Err(EvalError::RescaleAtLevelZero);
        }
        let rescale_poly = |m: &mut Self, p: &RnsPoly| {
            let l = p.level_count();
            let last_prime = p.basis().primes()[l - 1];
            let lower = p.basis().prefix(l - 1);
            let last = p.residues(l - 1).to_vec();
            let residues: Vec<Vec<u64>> = (0..l - 1)
                .map(|j| {
                    let qj = lower.primes()[j];
                    let last_mod: Vec<u64> = last.iter().map(|&v| v % qj).collect();
                    let diff = m.pool.sub(p.residues(j), &last_mod, qj);
                    let inv = he_math::modops::inv_mod_prime(last_prime % qj, qj)
                        .expect("distinct primes");
                    m.pool.mm_scalar(&diff, inv, qj)
                })
                .collect();
            RnsPoly::from_residues(&lower, residues, Form::Coeff)
        };
        let dropped = *a.c0().basis().primes().last().expect("non-empty") as f64;
        let c0 = rescale_poly(self, a.c0());
        let c1 = rescale_poly(self, a.c1());
        Ok(Ciphertext::new(c0, c1, a.scale() / dropped))
    }

    /// Fallible [`pmult`](Self::pmult). The plain path always succeeds;
    /// the signature is shared with the other backends so checked
    /// execution can slot in.
    ///
    /// # Errors
    ///
    /// Reserved for [`EvalError::IntegrityFault`] under checked execution.
    pub fn try_pmult(&mut self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        Ok(self.pmult(a, pt))
    }
}
