//! Plan equivalence: a planned replay must reproduce the unplanned
//! computation — digest-identically when every rewrite is bit-preserving
//! (hoisting, DVE, reordering), value-identically when rescale placement
//! moved scale management around.
//!
//! With `POSEIDON_PLAN_DIGEST_FILE=<path>` the value-preserving digests
//! are appended to `<path>` (`<name> <digest>` per line) so CI can diff
//! planned execution across `POSEIDON_NTT_KERNEL` values.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::digest_ciphertext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_core::plan::{execute, plan, Plan, PlanOptions};
use poseidon_core::recorder::RecordingEvaluator;
use poseidon_core::PoseidonMachine;
use rand::SeedableRng;

const SLOTS: usize = 4;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9_1A_2B);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys(1..=8i64, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    seed: f64,
) -> Ciphertext {
    let z: Vec<Complex> = (0..SLOTS)
        .map(|i| Complex::new(seed + 0.125 * i as f64, 0.0))
        .collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> Vec<f64> {
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), SLOTS)
        .iter()
        .map(|z| z.re)
        .collect()
}

fn assert_values_close(a: &[f64], b: &[f64], tol: f64) {
    for (x, y) in a.iter().zip(b) {
        let denom = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() / denom < tol,
            "values diverge: {x} vs {y} (tol {tol})"
        );
    }
}

/// Records an 8-rotation same-source fan (the acceptance-criteria graph)
/// and returns (graph, input ciphertext).
fn record_rotation_fan(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
) -> (poseidon_core::EvalGraph, Ciphertext) {
    let rec = RecordingEvaluator::new(Evaluator::new(ctx), 1);
    let a = encrypt(ctx, keys, rng, 0.5);
    let rots: Vec<Ciphertext> = (1..=8).map(|s| rec.rotate(&a, s, keys)).collect();
    let mut acc = rots[0].clone();
    for r in &rots[1..] {
        acc = rec.add(&acc, r);
    }
    rec.mark_output(&acc);
    (rec.eval_graph(), a)
}

#[test]
fn planned_rotation_fan_is_digest_identical_to_unplanned() {
    let (ctx, keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &keys, &mut rng);

    let unplanned = Plan::passthrough(graph.clone());
    let planned = plan(graph, &PlanOptions::default());
    assert!(planned.value_preserving);
    assert_eq!(planned.stats.hoist_batches, vec![8]);

    let mut eval = Evaluator::new(&ctx);
    let base = execute(&unplanned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let opt = execute(&planned, &mut eval, &[a], &keys).unwrap();
    assert_eq!(base.outputs.len(), opt.outputs.len());
    for (u, p) in base.outputs.iter().zip(&opt.outputs) {
        assert_eq!(
            digest_ciphertext(u),
            digest_ciphertext(p),
            "value-preserving plan changed ciphertext bits"
        );
    }
    assert!(opt.max_live <= base.max_live);
}

#[test]
fn replay_reproduces_the_recorded_run_itself() {
    let (ctx, keys, mut rng) = setup();
    let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
    let a = encrypt(&ctx, &keys, &mut rng, 0.5);
    let b = encrypt(&ctx, &keys, &mut rng, -0.25);
    let s = rec.add(&a, &b);
    let p = rec.mul(&s, &a, &keys);
    let r = rec.rescale(&p);
    let rot = rec.rotate(&r, 2, &keys);
    rec.mark_output(&rot);
    let (_, graph) = rec.into_recordings();

    // Replaying the captured graph (no passes) must reproduce the exact
    // ciphertext the original run produced.
    let unplanned = Plan::passthrough(graph);
    let mut eval = Evaluator::new(&ctx);
    let out = execute(&unplanned, &mut eval, &[a, b], &keys).unwrap();
    assert_eq!(out.outputs.len(), 1);
    assert_eq!(digest_ciphertext(&out.outputs[0]), digest_ciphertext(&rot));
}

#[test]
fn rescale_placement_preserves_decrypted_values() {
    let (ctx, keys, mut rng) = setup();
    let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
    let a = encrypt(&ctx, &keys, &mut rng, 0.5);
    // square → 4 rotations each followed by a caller-placed rescale → sum:
    // the sink pass shares one rescale, the hoist pass batches the
    // rotations.
    let x = rec.square(&a, &keys);
    let mut acc: Option<Ciphertext> = None;
    for s in 1..=4 {
        let r = rec.rotate(&x, s, &keys);
        let rr = rec.rescale(&r);
        acc = Some(match acc {
            None => rr,
            Some(prev) => rec.add(&prev, &rr),
        });
    }
    let out_ct = acc.unwrap();
    rec.mark_output(&out_ct);
    let (_, graph) = rec.into_recordings();

    let unplanned = Plan::passthrough(graph.clone());
    let planned = plan(graph, &PlanOptions::default());
    assert!(!planned.value_preserving);
    assert_eq!(planned.stats.rescales_sunk, 4);
    assert_eq!(planned.stats.rescales_after, 1);
    assert_eq!(planned.stats.hoist_batches, vec![4]);

    let mut eval = Evaluator::new(&ctx);
    let base = execute(&unplanned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let opt = execute(&planned, &mut eval, &[a], &keys).unwrap();
    // Same final level and scale (same primes dropped), same values.
    assert_eq!(base.outputs[0].level(), opt.outputs[0].level());
    assert!((base.outputs[0].scale() - opt.outputs[0].scale()).abs() < 1e-3);
    assert_values_close(
        &decrypt(&ctx, &keys, &base.outputs[0]),
        &decrypt(&ctx, &keys, &opt.outputs[0]),
        1e-4,
    );
}

#[test]
fn dead_values_are_not_executed() {
    let (ctx, keys, mut rng) = setup();
    let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
    let a = encrypt(&ctx, &keys, &mut rng, 1.0);
    let used = rec.square(&a, &keys);
    let dead = rec.rotate(&a, 1, &keys);
    let _dead2 = rec.add(&dead, &dead);
    assert!(rec.mark_output(&used));
    let (_, graph) = rec.into_recordings();

    let unplanned = Plan::passthrough(graph.clone());
    let planned = plan(graph, &PlanOptions::default());
    assert_eq!(planned.stats.dead_removed, 2);
    assert!(planned.schedule.len() < unplanned.schedule.len());

    let mut eval = Evaluator::new(&ctx);
    let base = execute(&unplanned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let opt = execute(&planned, &mut eval, &[a], &keys).unwrap();
    assert_eq!(
        digest_ciphertext(&base.outputs[0]),
        digest_ciphertext(&opt.outputs[0])
    );
}

#[test]
fn planned_execution_agrees_across_all_backends() {
    let (ctx, keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &keys, &mut rng);
    let planned = plan(graph, &PlanOptions::default());

    let mut eval = Evaluator::new(&ctx);
    let mut rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);
    let mut machine = PoseidonMachine::new(&ctx, 8, 1);

    let e = execute(&planned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let r = execute(&planned, &mut rec, std::slice::from_ref(&a), &keys).unwrap();
    let m = execute(&planned, &mut machine, &[a], &keys).unwrap();

    let ve = decrypt(&ctx, &keys, &e.outputs[0]);
    let vr = decrypt(&ctx, &keys, &r.outputs[0]);
    let vm = decrypt(&ctx, &keys, &m.outputs[0]);
    // Evaluator and recorder share the hoisting engine → bit-identical;
    // the machine's rotate_many uses a different digit representative, so
    // agreement is at the decrypted-value level.
    assert_eq!(
        digest_ciphertext(&e.outputs[0]),
        digest_ciphertext(&r.outputs[0])
    );
    assert_values_close(&ve, &vr, 1e-9);
    assert_values_close(&ve, &vm, 1e-4);
}

#[test]
fn executor_rejects_wrong_input_count() {
    let (ctx, keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &keys, &mut rng);
    let planned = plan(graph, &PlanOptions::default());
    let mut eval = Evaluator::new(&ctx);
    match execute(&planned, &mut eval, &[a.clone(), a], &keys) {
        Err(EvalError::InvalidParams(msg)) => assert!(msg.contains("input ciphertexts")),
        other => panic!("expected InvalidParams, got {other:?}"),
    }
}

#[test]
fn executor_surfaces_missing_rotation_keys() {
    let (ctx, full_keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &full_keys, &mut rng);
    let planned = plan(graph, &PlanOptions::default());
    // Fresh keyset without rotation keys: the hoisted batch must fail
    // with the missing key, not panic.
    let keyless = KeySet::generate(&ctx, &mut rng);
    let mut eval = Evaluator::new(&ctx);
    match execute(&planned, &mut eval, &[a], &keyless) {
        Err(EvalError::MissingRotationKey { .. }) => {}
        other => panic!("expected MissingRotationKey, got {other:?}"),
    }
}

#[cfg(feature = "telemetry")]
#[test]
fn planner_halves_forward_ntt_on_rotation_fan() {
    use poseidon_telemetry::{Registry, Snapshot};
    let fwd = |d: &Snapshot| d.get("ntt.forward").map_or(0, |s| s.count);

    let (ctx, keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &keys, &mut rng);
    let unplanned = Plan::passthrough(graph.clone());
    let planned = plan(graph, &PlanOptions::default());
    let mut eval = Evaluator::new(&ctx);
    let reg = Registry::global();

    let before = reg.snapshot();
    let _ = execute(&unplanned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let mid = reg.snapshot();
    let _ = execute(&planned, &mut eval, &[a], &keys).unwrap();
    let after = reg.snapshot();

    let base = fwd(&mid.since(&before));
    let opt = fwd(&after.since(&mid));
    assert!(
        opt * 2 <= base,
        "planned ntt.forward {opt} not ≥2× below unplanned {base}"
    );
}

/// Always-on digest pinning; additionally appends to
/// `POSEIDON_PLAN_DIGEST_FILE` when set so CI can diff across NTT
/// kernels.
#[test]
fn value_preserving_digests_are_deterministic() {
    let (ctx, keys, mut rng) = setup();
    let (graph, a) = record_rotation_fan(&ctx, &keys, &mut rng);
    let planned = plan(graph, &PlanOptions::default());
    let mut eval = Evaluator::new(&ctx);
    let once = execute(&planned, &mut eval, std::slice::from_ref(&a), &keys).unwrap();
    let twice = execute(&planned, &mut eval, &[a], &keys).unwrap();
    let d1 = digest_ciphertext(&once.outputs[0]);
    assert_eq!(d1, digest_ciphertext(&twice.outputs[0]));

    if let Ok(path) = std::env::var("POSEIDON_PLAN_DIGEST_FILE") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open digest file");
        writeln!(f, "rotation_fan_planned {d1:016x}").expect("write digest");
    }
}
