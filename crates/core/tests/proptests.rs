//! Property-based tests for the operator layer: HFAuto's lemma over random
//! parameters and decomposition invariants.

use poseidon_core::decompose::{BasicOp, OpParams};
use poseidon_core::{HfAuto, Operator, OperatorPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's lemma, machine-checked: for every (N, C, odd g), the
    /// four-stage HFAuto schedule equals the element-wise automorphism.
    #[test]
    fn hfauto_lemma(log_n in 3u32..9, log_c_frac in 0u32..4, g_raw in any::<u64>(), seed in any::<u64>()) {
        let n = 1usize << log_n;
        let c = 1usize << (log_n - log_n.min(log_c_frac * 2)).min(log_n);
        let q = he_math::prime::ntt_prime(28, 2 * n as u64).unwrap();
        let g = (g_raw % (2 * n as u64)) | 1; // odd, < 2N after the or? keep odd:
        let g = if g >= 2 * n as u64 { g - 2 * n as u64 + 1 } else { g };
        let g = g | 1;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % q).collect();
        let hf = HfAuto::new(n, c);
        let (naive, _) = hf.apply_naive(&data, g, q);
        prop_assert_eq!(hf.apply(&data, g, q), naive, "n={} c={} g={}", n, c, g);
    }

    /// HFAuto with the inverse Galois element undoes the mapping.
    #[test]
    fn hfauto_inverse_element_round_trips(log_n in 3u32..8, e in 0u64..6, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let two_n = 2 * n as u64;
        let g = he_math::modops::pow_mod(5, e, two_n);
        let g_inv = he_math::modops::inv_mod(g, two_n).unwrap();
        let q = he_math::prime::ntt_prime(28, two_n).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % q).collect();
        let hf = HfAuto::new(n, (n / 4).max(1));
        let round = hf.apply(&hf.apply(&data, g, q), g_inv, q);
        prop_assert_eq!(round, data);
    }

    /// Operator counts are monotone in every parameter.
    #[test]
    fn counts_monotone_in_components(log_n in 3u32..10, l in 1usize..20, k in 1usize..4) {
        let n = 1usize << log_n;
        let p_small = OpParams::new(n, l, k);
        let p_big = OpParams::new(n, l + 1, k);
        for op in BasicOp::ALL {
            let a = op.operator_counts(&p_small);
            let b = op.operator_counts(&p_big);
            for o in Operator::ALL {
                prop_assert!(b.get(o) >= a.get(o), "{} {o}", op.name());
            }
        }
    }

    /// dnum scales keyswitch NTT work linearly in the digit count.
    #[test]
    fn keyswitch_scales_with_dnum(l in 2usize..20) {
        let p1 = OpParams::with_dnum(1 << 12, l, 2, 1);
        let pl = OpParams::with_dnum(1 << 12, l, 2, l);
        let c1 = BasicOp::Keyswitch.operator_counts(&p1);
        let cl = BasicOp::Keyswitch.operator_counts(&pl);
        prop_assert!(cl.ntt > c1.ntt);
        prop_assert!(cl.mm >= c1.mm);
    }

    /// The pooled MA/MM cores match scalar reference arithmetic on random
    /// vectors and any NTT-friendly modulus.
    #[test]
    fn pool_cores_match_reference(seed in any::<u64>()) {
        let n = 64usize;
        let q = he_math::prime::ntt_prime(28, 2 * n as u64).unwrap();
        let mut pool = OperatorPool::new(n, 16, 3);
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed.rotate_left(7) | 3) % q).collect();
        let s = pool.ma(&a, &b, q);
        let m = pool.mm(&a, &b, q);
        for i in 0..n {
            prop_assert_eq!(s[i], he_math::modops::add_mod(a[i], b[i], q));
            prop_assert_eq!(m[i], he_math::modops::mul_mod(a[i], b[i], q));
        }
    }

    /// Pool NTT round trip for random vectors.
    #[test]
    fn pool_ntt_round_trips(seed in any::<u64>()) {
        let n = 64usize;
        let q = he_math::prime::ntt_prime(28, 2 * n as u64).unwrap();
        let mut pool = OperatorPool::new(n, 16, 3);
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % q).collect();
        let mut d = a.clone();
        pool.ntt(&mut d, q);
        pool.intt(&mut d, q);
        prop_assert_eq!(d, a);
    }
}
