//! End-to-end validation of the Poseidon functional machine: real CKKS
//! operations executed through the five pooled cores must decrypt to the
//! same results as the reference evaluator.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use poseidon_core::{Operator, PoseidonMachine};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9A);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    (ctx.clone(), keys, Evaluator::new(&ctx), rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    vals: &[f64],
) -> Ciphertext {
    let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext, n: usize) -> Vec<f64> {
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), n)
        .iter()
        .map(|c| c.re)
        .collect()
}

#[test]
fn machine_hadd_decrypts_correctly() {
    let (ctx, keys, _, mut rng) = setup();
    let mut m = PoseidonMachine::new(&ctx, 256, 3);
    let a = encrypt(&ctx, &keys, &mut rng, &[1.0, -2.5]);
    let b = encrypt(&ctx, &keys, &mut rng, &[0.5, 4.0]);
    let sum = m.hadd(&a, &b);
    let got = decrypt(&ctx, &keys, &sum, 2);
    assert!((got[0] - 1.5).abs() < 1e-3 && (got[1] - 1.5).abs() < 1e-3);
    // HAdd is MA-only on the machine (Table I / Fig. 7).
    let u = m.usage();
    assert!(u.ma > 0);
    assert_eq!(u.mm, 0);
    assert_eq!(u.ntt, 0);
    assert_eq!(u.auto, 0);
}

#[test]
fn machine_pmult_matches_evaluator() {
    let (ctx, keys, eval, mut rng) = setup();
    let mut m = PoseidonMachine::new(&ctx, 256, 3);
    let a = encrypt(&ctx, &keys, &mut rng, &[2.0, -1.0]);
    let pt = eval.encode_at_level(
        &[Complex::new(1.5, 0.0), Complex::new(0.5, 0.0)],
        ctx.default_scale(),
        a.level(),
    );
    let machine_out = m.pmult(&a, &pt);
    let eval_out = eval.mul_plain(&a, &pt);
    // Identical ciphertexts (both paths do exact arithmetic).
    assert_eq!(machine_out, eval_out);
    let got = decrypt(&ctx, &keys, &m.rescale(&machine_out), 2);
    assert!((got[0] - 3.0).abs() < 1e-2 && (got[1] + 0.5).abs() < 1e-2);
}

#[test]
fn machine_cmult_decrypts_to_product() {
    let (ctx, keys, _, mut rng) = setup();
    let mut m = PoseidonMachine::new(&ctx, 256, 3);
    let a = encrypt(&ctx, &keys, &mut rng, &[1.5, -2.0]);
    let b = encrypt(&ctx, &keys, &mut rng, &[2.0, 0.5]);
    let raw = m.cmult(&a, &b, &keys);
    let prod = m.rescale(&raw);
    let got = decrypt(&ctx, &keys, &prod, 2);
    assert!((got[0] - 3.0).abs() < 0.02, "{}", got[0]);
    assert!((got[1] + 1.0).abs() < 0.02, "{}", got[1]);
    // CMult exercises MA, MM, NTT, SBT but not Automorphism.
    let u = m.usage();
    for op in [Operator::Ma, Operator::Mm, Operator::Ntt, Operator::Sbt] {
        assert!(u.get(op) > 0, "{op}");
    }
    assert_eq!(u.auto, 0);
}

#[test]
fn machine_rotation_matches_evaluator_semantics() {
    let (ctx, keys, eval, mut rng) = setup();
    let mut m = PoseidonMachine::new(&ctx, 256, 3);
    let slots = ctx.params().slots();
    let vals: Vec<f64> = (0..slots).map(|i| ((i % 7) as f64) / 2.0 - 1.0).collect();
    let ct = encrypt(&ctx, &keys, &mut rng, &vals);
    let machine_rot = m.rotate(&ct, 1, &keys);
    let eval_rot = eval.rotate(&ct, 1, &keys);
    // Both decrypt to the same rotated vector. The ciphertext bits differ:
    // the machine lifts the automorphed c1 (representative q_j − v at
    // wrapped positions), while the hoisted evaluator automorphs the
    // lifted digits (representative −v) — CRT-consistent encodings of the
    // same residue, so the decryptions agree to working precision.
    let got = decrypt(&ctx, &keys, &machine_rot, slots);
    let got_eval = decrypt(&ctx, &keys, &eval_rot, slots);
    for i in 0..6 {
        assert!((got[i] - vals[(i + 1) % slots]).abs() < 1e-2, "slot {i}");
        assert!(
            (got[i] - got_eval[i]).abs() < 1e-3,
            "slot {i} backend drift"
        );
    }
    // Rotation uses all five operators (Table I).
    let u = m.usage();
    for op in Operator::ALL {
        assert!(u.get(op) > 0, "{op}");
    }
}

#[test]
fn machine_usage_scales_with_level() {
    let (ctx, keys, _, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
    let b = encrypt(&ctx, &keys, &mut rng, &[1.0]);
    let mut m_full = PoseidonMachine::new(&ctx, 256, 3);
    let _ = m_full.cmult(&a, &b, &keys);
    let full = m_full.usage();

    let eval = Evaluator::new(&ctx);
    let a_low = eval.drop_to_level(&a, 1);
    let b_low = eval.drop_to_level(&b, 1);
    let mut m_low = PoseidonMachine::new(&ctx, 256, 3);
    let _ = m_low.cmult(&a_low, &b_low, &keys);
    let low = m_low.usage();
    assert!(full.ntt > low.ntt, "NTT work must grow with level");
    assert!(full.mm > low.mm);
}
