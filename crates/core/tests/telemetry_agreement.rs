//! Telemetry agreement tests (compiled only with `--features telemetry`):
//! the pool's metric items must be the *same numbers* as
//! `OperatorPool::usage()` and, where the machine's dataflow matches the
//! paper's decomposition model, the Table I element counts.

#![cfg(feature = "telemetry")]

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_core::decompose::{BasicOp, OpParams};
use poseidon_core::{Operator, PoseidonMachine};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7E1E);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng, v: f64) -> Ciphertext {
    let z = vec![Complex::new(v, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// Per-operator snapshot items must equal `usage()` exactly — they are two
/// views over the same atomics, so any drift is a double-count bug.
#[test]
fn snapshot_items_equal_usage_exactly() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.5);
    let b = encrypt(&ctx, &keys, &mut rng, -2.0);
    let mut m = PoseidonMachine::new(&ctx, 8, 1);
    let s = m.hadd(&a, &b);
    let p = m.cmult(&s, &a, &keys);
    let r = m.rescale(&p);
    let _ = m.rotate(&r, 1, &keys);

    let usage = m.usage();
    assert!(usage.total() > 0, "workload produced no operator traffic");
    let snap = m.pool_mut().snapshot();
    for (scope, expected) in [
        ("pool.ma", usage.ma),
        ("pool.mm", usage.mm),
        ("pool.ntt", usage.ntt),
        ("pool.auto", usage.auto),
        ("pool.sbt", usage.sbt),
    ] {
        let stats = snap.get(scope).expect("scope registered");
        assert_eq!(stats.items, expected, "{scope} diverged from usage()");
        assert!(stats.count > 0, "{scope} recorded items but no events");
    }
}

/// HAdd is the one operation whose machine dataflow is element-for-element
/// the Table I decomposition (2·L·N MA, nothing else) — assert the
/// telemetry counters reproduce the model count exactly.
#[test]
fn hadd_counters_match_table1_decomposition_exactly() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 0.25);
    let b = encrypt(&ctx, &keys, &mut rng, 0.75);
    let mut m = PoseidonMachine::new(&ctx, 8, 1);
    let _ = m.hadd(&a, &b);

    let p = OpParams::new(ctx.n(), a.level() + 1, ctx.special_basis().len());
    let model = BasicOp::HAdd.operator_counts(&p);
    let usage = m.usage();
    assert_eq!(usage.ma, model.ma, "MA elements diverge from Table I");
    assert_eq!(usage.mm, 0);
    assert_eq!(usage.ntt, 0);
    assert_eq!(usage.auto, 0);
    assert_eq!(usage.sbt, 0);
}

/// Rotation exercises every operator in Table I's checkmark row; the
/// machine's measured nonzero pattern must reproduce it, and the
/// automorphism element count is exact (2·L·N).
#[test]
fn rotation_usage_pattern_matches_table1_row() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.0);
    let mut m = PoseidonMachine::new(&ctx, 8, 1);
    let _ = m.rotate(&a, 1, &keys);

    let p = OpParams::new(ctx.n(), a.level() + 1, ctx.special_basis().len());
    let usage = m.usage();
    for (op, used) in BasicOp::Rotation.uses(&p) {
        assert_eq!(
            usage.get(op) > 0,
            used,
            "{op} usage contradicts the Table I Rotation row"
        );
    }
    let model = BasicOp::Rotation.operator_counts(&p);
    assert_eq!(usage.auto, model.auto, "Automorphism elements diverge");
}

/// The evaluator's per-instance metrics and the global scopes observe the
/// same keyswitch digits: `keyswitch.digit` spans count one event per
/// (digit, operation) with nonzero time.
#[test]
fn evaluator_scopes_observe_keyswitch_digits() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.0);
    let eval = Evaluator::new(&ctx);
    let before = poseidon_telemetry::Registry::global().snapshot();
    let _ = eval.rotate(&a, 1, &keys);
    let after = poseidon_telemetry::Registry::global().snapshot();
    let delta = after.since(&before);
    let digits = delta.get("keyswitch.digit").expect("scope registered");
    // One digit per live chain prime (α = 1 digit decomposition).
    assert_eq!(digits.count, (a.level() + 1) as u64);
    let rot = delta.get("eval.rotate").expect("scope registered");
    assert_eq!(rot.count, 1);
    assert!(rot.nanos > 0, "rotation span recorded no time");
}

/// `Operator::ALL`-driven reset: counters go back to zero and stay usable.
#[test]
fn reset_usage_clears_all_metrics() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.0);
    let mut m = PoseidonMachine::new(&ctx, 8, 1);
    let _ = m.rotate(&a, 1, &keys);
    assert!(m.usage().total() > 0);
    m.reset_usage();
    assert_eq!(m.usage().total(), 0);
    let _ = m.hadd(&a, &a);
    assert!(m.usage().uses(Operator::Ma));
}
