//! Fault-injection campaigns against the machine's MA-core retire check:
//! the ABFT sum invariant must catch residue corruption at the operator
//! retire boundary, recompute once, and escalate persistent faults as a
//! typed error instead of panicking.

#![cfg(feature = "faults")]

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::integrity::integrity_stats;
use he_ckks::prelude::*;
use poseidon_core::PoseidonMachine;
use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA17);
    let keys = KeySet::generate(&ctx, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng, v: f64) -> Ciphertext {
    let z = vec![Complex::new(v, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

#[test]
fn retire_check_recovers_from_transient_residue_fault() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.5);
    let b = encrypt(&ctx, &keys, &mut rng, -0.25);
    let mut m = PoseidonMachine::new(&ctx, 256, 3);
    let clean = m.hadd(&a, &b);

    let before = integrity_stats();
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::RnsResidue,
        FaultKind::BitFlip,
        0xA11CE,
    ));
    let got = m.try_hadd(&a, &b).expect("transient must recover");
    poseidon_faults::disarm();
    let after = integrity_stats();

    assert!(poseidon_faults::fired() > 0, "the fault never fired");
    assert_eq!(got, clean, "recomputed sum must match the clean run");
    assert!(after.detected > before.detected, "retire check missed it");
    assert!(after.retried > before.retried, "recompute not counted");
    assert_eq!(after.escalated, before.escalated, "transient escalated");
}

#[test]
fn retire_check_escalates_persistent_fault_without_panicking() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 2.0);
    let b = encrypt(&ctx, &keys, &mut rng, 0.5);
    let mut m = PoseidonMachine::new(&ctx, 256, 3);

    let before = integrity_stats();
    poseidon_faults::arm(FaultPlan::persistent(
        FaultSite::RnsResidue,
        FaultKind::BitFlip,
        0xDEAD,
    ));
    let hadd = m.try_hadd(&a, &b);
    let hsub = m.try_hsub(&a, &b);
    poseidon_faults::disarm();
    let after = integrity_stats();

    for res in [hadd, hsub] {
        match res {
            Err(EvalError::IntegrityFault { site }) => {
                assert_eq!(site, "pool.retire");
            }
            other => panic!("expected IntegrityFault, got {other:?}"),
        }
    }
    assert!(after.escalated >= before.escalated + 2, "not escalated");
}

#[test]
fn every_sum_check_passes_on_a_clean_machine() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 0.5);
    let b = encrypt(&ctx, &keys, &mut rng, 0.125);
    let mut m = PoseidonMachine::new(&ctx, 256, 3);

    let before = integrity_stats();
    let sum = m.try_hadd(&a, &b).expect("clean");
    let diff = m.try_hsub(&a, &b).expect("clean");
    let after = integrity_stats();

    assert!(after.checked >= before.checked + 2, "checks not counted");
    assert_eq!(after.detected, before.detected, "false positive");
    let pt = keys.secret().decrypt(&m.hadd(&sum, &diff));
    let got = ctx.encoder().decode_rns(pt.poly(), pt.scale(), 1)[0].re;
    // (a + b) + (a - b) = 2a
    assert!((got - 1.0).abs() < 1e-3, "clean arithmetic drifted: {got}");
}
