//! Planner phase 2 end-to-end: a `.pos`-shaped program that exhausts
//! the modulus chain compiles under the Defer policy, gets a `Bootstrap`
//! node auto-inserted by the planning pipeline, and runs to a correct
//! decryption on both the functional evaluator and the cycle-modelled
//! machine — plus the typed rejection paths and the balanced-reduction
//! digest pin.

use he_ckks::bootstrap::{encode_for_bootstrap, Bootstrapper};
use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::digest_ciphertext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_core::decompose::{BasicOp, OpParams, OpTrace};
use poseidon_core::plan::{
    compile_trace, execute, execute_with, plan_trace, BootstrapOptions, CompileOptions, EvalGraph,
    GraphOp, Plan, PlanError, PlanOptions,
};
use poseidon_core::PoseidonMachine;
use rand::SeedableRng;

const SLOTS: usize = 4;
const MESSAGE: [f64; SLOTS] = [0.25, -0.5, 0.125, 0.4375];

/// A program that deliberately walks the chain to level 0 (the
/// exhaust-before-refresh idiom) and then asks for a squaring the dead
/// chain cannot fund, with a rescale/add tail.
fn exhausting_trace() -> OpTrace {
    let p = |components: usize| OpParams::new(1 << 16, components, 2);
    let mut t = OpTrace::new();
    t.push(BasicOp::Moddown, p(24), 8);
    t.push(BasicOp::Moddown, p(16), 8);
    t.push(BasicOp::Moddown, p(8), 8);
    t.push(BasicOp::CMult, p(1), 1);
    t.push(BasicOp::Rescale, p(1), 1);
    t.push(BasicOp::HAdd, p(1), 1);
    t
}

/// Bootstrap-capable tenant state: sparse secret, the bootstrapper's
/// rotation set, and the conjugation key.
fn bootstrap_setup() -> (CkksContext, KeySet, Bootstrapper, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let mut keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let bs = Bootstrapper::new(&ctx, SLOTS, 6);
    for step in bs.required_rotations() {
        keys.add_rotation_key(step, &mut rng);
    }
    keys.add_conjugation_key(&mut rng);
    (ctx, keys, bs, rng)
}

fn encrypt_message(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng) -> Ciphertext {
    let z: Vec<Complex> = MESSAGE.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = encode_for_bootstrap(ctx, &z);
    keys.public().encrypt(&pt, rng)
}

fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> Vec<f64> {
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), SLOTS)
        .iter()
        .map(|z| z.re)
        .collect()
}

/// Under the legacy `SegmentReset` policy the same program silently
/// splits into two segments — the condition `make_room` used to paper
/// over. Under `Defer` (what bootstrap planning uses) the dataflow stays
/// whole and the exhaustion is *counted*.
#[test]
fn exhausting_program_split_segments_before_and_is_counted_now() {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let trace = exhausting_trace();

    let reset = compile_trace(&trace, &ctx, &CompileOptions::default()).expect("compiles");
    assert!(
        reset.segments >= 2,
        "SegmentReset must split the exhausted chain, got {} segment(s)",
        reset.segments
    );

    let defer = compile_trace(
        &trace,
        &ctx,
        &CompileOptions {
            exhaustion: poseidon_core::plan::Exhaustion::Defer,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert_eq!(defer.segments, 1, "Defer must keep one dataflow");
    assert!(defer.exhausted >= 1, "exhaustion must be counted");
}

/// The acceptance-criteria path: the exhausted program plans with one
/// auto-inserted `Bootstrap`, executes on both backends, and decrypts to
/// `2·v²` within bootstrap precision — with the two backends agreeing.
#[test]
fn exhausted_program_runs_end_to_end_with_auto_inserted_bootstrap() {
    let (ctx, keys, bs, mut rng) = bootstrap_setup();
    let opts = PlanOptions {
        bootstrap: Some(BootstrapOptions::for_params(
            &CkksParams::bootstrap_demo(),
            2,
        )),
        ..PlanOptions::default()
    };
    let plan = plan_trace(&exhausting_trace(), &ctx, &opts).expect("plans with refresh");
    let bootstraps = plan
        .schedule
        .iter()
        .filter(|&&nid| matches!(plan.graph.node(nid).op, GraphOp::Bootstrap { .. }))
        .count();
    assert_eq!(bootstraps, 1, "exactly one refresh must be spliced in");
    assert_eq!(plan.stats.bootstraps_inserted, 1);
    assert!(
        !plan.value_preserving,
        "a refreshed schedule is not bit-preserving"
    );

    let ct = encrypt_message(&ctx, &keys, &mut rng);
    let mut eval = Evaluator::new(&ctx);
    let e = execute_with(
        &plan,
        &mut eval,
        std::slice::from_ref(&ct),
        &keys,
        Some(&bs),
    )
    .expect("evaluator execution");
    let mut machine = PoseidonMachine::new(&ctx, 8, 1);
    let m = execute_with(&plan, &mut machine, &[ct], &keys, Some(&bs)).expect("machine execution");

    let got_e = decrypt(&ctx, &keys, &e.outputs[0]);
    let got_m = decrypt(&ctx, &keys, &m.outputs[0]);
    for (j, &v) in MESSAGE.iter().enumerate() {
        let want = 2.0 * v * v;
        assert!(
            (got_e[j] - want).abs() < 0.15,
            "slot {j}: wanted {want}, evaluator got {}",
            got_e[j]
        );
        assert!(
            (got_e[j] - got_m[j]).abs() < 0.05,
            "slot {j}: backends disagree: {} vs {}",
            got_e[j],
            got_m[j]
        );
    }
}

/// Without registered bootstrap key material the same program is a
/// typed plan-time rejection — not runtime garbage, not a silent reset.
#[test]
fn exhausted_program_without_bootstrap_key_is_rejected_at_plan_time() {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let opts = PlanOptions {
        bootstrap: Some(BootstrapOptions::without_key(
            &CkksParams::bootstrap_demo(),
            2,
        )),
        ..PlanOptions::default()
    };
    let err = plan_trace(&exhausting_trace(), &ctx, &opts).expect_err("must be rejected");
    match err {
        PlanError::BudgetExhausted { reason, level, .. } => {
            assert!(reason.contains("no bootstrap key"), "{reason}");
            assert_eq!(level, 0, "violation sits at the chain floor");
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

/// A plan holding a `Bootstrap` node refuses to run without a
/// bootstrapper — typed, before any partial execution.
#[test]
fn bootstrap_plan_without_bootstrapper_is_a_typed_runtime_error() {
    let (ctx, keys, _bs, mut rng) = bootstrap_setup();
    let opts = PlanOptions {
        bootstrap: Some(BootstrapOptions::for_params(
            &CkksParams::bootstrap_demo(),
            2,
        )),
        ..PlanOptions::default()
    };
    let plan = plan_trace(&exhausting_trace(), &ctx, &opts).expect("plans");
    let ct = encrypt_message(&ctx, &keys, &mut rng);
    let mut eval = Evaluator::new(&ctx);
    let err = execute(&plan, &mut eval, &[ct], &keys).expect_err("must refuse");
    assert!(matches!(
        err,
        he_ckks::error::EvalError::BootstrapUnavailable
    ));
}

/// The balanced-tree fan reduction is bit-identical to the linear chain
/// it replaced: modular addition is exactly associative in u64 residue
/// arithmetic, pinned here at the ciphertext-digest level.
#[test]
fn balanced_fan_reduction_is_digest_identical_to_a_linear_chain() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7EED);
    let keys = KeySet::generate(&ctx, &mut rng);
    let sb = f64::from(ctx.params().scale_prime_bits);
    let lvl = ctx.max_level();

    let linear = {
        let mut g = EvalGraph::new(sb);
        let terms: Vec<_> = (0..8).map(|_| g.input(lvl, sb)).collect();
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = g.add(acc, t);
        }
        g.mark_output(acc);
        g
    };
    let balanced = {
        let mut g = EvalGraph::new(sb);
        let mut layer: Vec<_> = (0..8).map(|_| g.input(lvl, sb)).collect();
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|c| g.add(c[0], c[1])).collect();
        }
        g.mark_output(layer[0]);
        g
    };

    let inputs: Vec<Ciphertext> = (0..8)
        .map(|i| {
            let z = [Complex::new(0.05 + 0.01 * i as f64, 0.0)];
            let pt = he_ckks::cipher::Plaintext::new(
                ctx.encoder()
                    .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
                ctx.default_scale(),
            );
            keys.public().encrypt(&pt, &mut rng)
        })
        .collect();

    let mut eval = Evaluator::new(&ctx);
    let a = execute(&Plan::passthrough(linear), &mut eval, &inputs, &keys).expect("linear chain");
    let b =
        execute(&Plan::passthrough(balanced), &mut eval, &inputs, &keys).expect("balanced tree");
    assert_eq!(
        digest_ciphertext(&a.outputs[0]),
        digest_ciphertext(&b.outputs[0]),
        "tree reduction changed bits"
    );
}
