//! Energy model: per-element operator energies plus HBM access energy.
//!
//! Constants are model calibrations for a 16 nm FPGA datapath (DSP-based
//! 32-bit multiply ≈ 3 pJ, LUT add ≈ 0.4 pJ, HBM2 access ≈ 14 pJ/byte —
//! consistent with the paper's Fig. 12 shape: memory dominates, MM and NTT
//! dominate the compute share, MA is negligible).

use poseidon_core::operator::OperatorCounts;

/// Energy per element operation, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// MA: compare-and-correct adder.
    pub ma_pj: f64,
    /// MM: 32-bit multiply + Barrett reduce (DSP path).
    pub mm_pj: f64,
    /// NTT: one butterfly element-phase (multiply + add + reduce).
    pub ntt_pj: f64,
    /// Automorphism: one element mapping (mux/permute network).
    pub auto_pj: f64,
    /// SBT: one shared Barrett reduction issued standalone.
    pub sbt_pj: f64,
    /// HBM access energy per byte.
    pub hbm_pj_per_byte: f64,
    /// Static power of the configured design, in watts.
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            ma_pj: 0.8,
            mm_pj: 8.0,
            ntt_pj: 6.0,
            auto_pj: 1.2,
            sbt_pj: 2.0,
            hbm_pj_per_byte: 25.0,
            static_watts: 3.0,
        }
    }
}

/// Energy breakdown in joules (Fig. 12's categories).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// MA core energy.
    pub ma: f64,
    /// MM core energy.
    pub mm: f64,
    /// NTT core energy.
    pub ntt: f64,
    /// Automorphism core energy.
    pub auto: f64,
    /// Standalone SBT energy.
    pub sbt: f64,
    /// HBM access energy.
    pub memory: f64,
    /// Static energy over the run.
    pub static_energy: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.ma + self.mm + self.ntt + self.auto + self.sbt + self.memory + self.static_energy
    }

    /// Energy-delay product for a run of `seconds`.
    pub fn edp(&self, seconds: f64) -> f64 {
        self.total() * seconds
    }
}

impl EnergyModel {
    /// Energy for `counts` element operations, `hbm_bytes` of traffic, and
    /// a run of `seconds`.
    pub fn energy(&self, counts: &OperatorCounts, hbm_bytes: u64, seconds: f64) -> EnergyBreakdown {
        const PJ: f64 = 1e-12;
        // SBT issues attached to MM/NTT are inside those cores' figures;
        // only the standalone share (sign logic etc.) is counted here.
        let standalone_sbt = counts.sbt.saturating_sub(counts.mm + counts.ntt);
        EnergyBreakdown {
            ma: counts.ma as f64 * self.ma_pj * PJ,
            mm: counts.mm as f64 * self.mm_pj * PJ,
            ntt: counts.ntt as f64 * self.ntt_pj * PJ,
            auto: counts.auto as f64 * self.auto_pj * PJ,
            sbt: standalone_sbt as f64 * self.sbt_pj * PJ,
            memory: hbm_bytes as f64 * self.hbm_pj_per_byte * PJ,
            static_energy: self.static_watts * seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_core::decompose::{BasicOp, OpParams};

    #[test]
    fn memory_dominates_streaming_ops() {
        // Fig. 12: memory access takes the largest share.
        let p = OpParams::new(1 << 16, 44, 2);
        let counts = BasicOp::HAdd.operator_counts(&p);
        let bytes = crate::timing::hbm_words(BasicOp::HAdd, &p) * 4;
        let e = EnergyModel::default().energy(&counts, bytes, 0.0);
        assert!(e.memory > e.ma + e.mm + e.ntt + e.auto + e.sbt);
    }

    #[test]
    fn mm_and_ntt_dominate_compute_energy() {
        let p = OpParams::new(1 << 16, 44, 2);
        let counts = BasicOp::CMult.operator_counts(&p);
        let e = EnergyModel::default().energy(&counts, 0, 0.0);
        assert!(e.mm + e.ntt > e.ma + e.auto + e.sbt);
    }

    #[test]
    fn edp_scales_with_both_factors() {
        let counts = poseidon_core::OperatorCounts {
            mm: 1000,
            ..poseidon_core::OperatorCounts::ZERO
        };
        let m = EnergyModel::default();
        let e = m.energy(&counts, 1000, 1.0);
        assert!(e.edp(2.0) > e.edp(1.0));
        assert!(e.total() > 0.0);
    }

    #[test]
    fn sbt_not_double_counted() {
        // For a pure-MM op, sbt == mm and the standalone share is zero.
        let p = OpParams::new(1 << 13, 4, 1);
        let counts = BasicOp::PMult.operator_counts(&p);
        let e = EnergyModel::default().energy(&counts, 0, 0.0);
        assert_eq!(e.sbt, 0.0);
    }
}
