//! HBM channel model: how polynomial vectors spread over the 32 channels.
//!
//! §IV-A: "A polynomial vector can be segmented by the number of HBM
//! channels, and we can abstract the multi-channel HBM into a vector
//! memory." This module makes that abstraction checkable: residue
//! polynomials are striped across channels in `burst`-sized segments, and
//! the model reports per-channel load so balance (the premise of quoting
//! the aggregate 460 GB/s) can be asserted rather than assumed.

use crate::config::AcceleratorConfig;

/// Channel-striping layout for polynomial transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmLayout {
    /// Number of channels (32 on the U280's two stacks).
    pub channels: u32,
    /// Stripe (burst) size in bytes — one channel's contiguous chunk.
    pub burst_bytes: u64,
}

impl HbmLayout {
    /// Layout from an accelerator configuration with a 256-byte burst
    /// (64-bit channel × 32-beat burst).
    pub fn from_config(cfg: &AcceleratorConfig) -> Self {
        Self {
            channels: cfg.hbm_channels,
            burst_bytes: 256,
        }
    }

    /// The channel serving byte offset `addr` of a stream.
    #[inline]
    pub fn channel_of(&self, addr: u64) -> u32 {
        ((addr / self.burst_bytes) % self.channels as u64) as u32
    }

    /// Per-channel bytes for a contiguous transfer of `bytes` starting at
    /// offset 0.
    pub fn channel_loads(&self, bytes: u64) -> Vec<u64> {
        let mut loads = vec![0u64; self.channels as usize];
        let full_rounds = bytes / (self.burst_bytes * self.channels as u64);
        for l in &mut loads {
            *l = full_rounds * self.burst_bytes;
        }
        let mut rem = bytes - full_rounds * self.burst_bytes * self.channels as u64;
        let mut ch = 0usize;
        while rem > 0 {
            let take = rem.min(self.burst_bytes);
            loads[ch] += take;
            rem -= take;
            ch = (ch + 1) % self.channels as usize;
        }
        loads
    }

    /// Load imbalance of a transfer: `max/mean − 1` (0 = perfectly even).
    pub fn imbalance(&self, bytes: u64) -> f64 {
        let loads = self.channel_loads(bytes);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = bytes as f64 / self.channels as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }

    /// Effective transfer time for `bytes` at `per_channel_bw` bytes/s per
    /// channel: bounded by the most-loaded channel.
    pub fn transfer_seconds(&self, bytes: u64, per_channel_bw: f64) -> f64 {
        let loads = self.channel_loads(bytes);
        *loads.iter().max().unwrap_or(&0) as f64 / per_channel_bw
    }

    /// Bytes of one residue polynomial at degree `n` with `word` bytes.
    pub fn poly_bytes(n: usize, word: u64) -> u64 {
        n as u64 * word
    }

    /// Streams a residue vector through the striped channels and returns
    /// the per-channel byte loads of the transfer. The timing model alone
    /// never touches data; this is the data-bearing variant the integrity
    /// layer exercises — with the `faults` feature and an armed
    /// `HbmChannel` plan, the payload is corrupted in flight, the model's
    /// stand-in for a bad beat on one channel of a striped read.
    pub fn stream_through(&self, words: &mut [u64]) -> Vec<u64> {
        #[cfg(feature = "faults")]
        poseidon_faults::tamper(poseidon_faults::FaultSite::HbmChannel, words);
        self.channel_loads(words.len() as u64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HbmLayout {
        HbmLayout::from_config(&AcceleratorConfig::poseidon_u280())
    }

    #[test]
    fn large_polynomials_stripe_evenly() {
        // One residue poly at N = 2^16, 4-byte words = 256 KiB: a whole
        // number of rounds over 32 channels × 256 B bursts.
        let l = layout();
        let bytes = HbmLayout::poly_bytes(1 << 16, 4);
        assert!(
            l.imbalance(bytes) < 1e-9,
            "imbalance {}",
            l.imbalance(bytes)
        );
        let loads = l.channel_loads(bytes);
        assert!(loads.iter().all(|&b| b == loads[0]));
    }

    #[test]
    fn small_transfers_are_imbalanced() {
        // A single burst lands on one channel: worst-case imbalance.
        let l = layout();
        assert!(l.imbalance(256) > 10.0);
        // Paper-scale polynomials avoid this regime entirely.
        assert!(l.imbalance(HbmLayout::poly_bytes(1 << 12, 4)) < 1e-9);
    }

    #[test]
    fn transfer_time_matches_aggregate_bandwidth_when_balanced() {
        let l = layout();
        let cfg = AcceleratorConfig::poseidon_u280();
        let per_channel = cfg.hbm_bytes_per_sec / cfg.hbm_channels as f64;
        let bytes = HbmLayout::poly_bytes(1 << 16, 4);
        let t = l.transfer_seconds(bytes, per_channel);
        let ideal = bytes as f64 / cfg.hbm_bytes_per_sec;
        assert!((t - ideal).abs() < ideal * 1e-9, "{t} vs {ideal}");
    }

    #[test]
    fn stream_through_reports_loads_and_passes_data() {
        let l = layout();
        let mut words = vec![0xAAu64; 1 << 12];
        let loads = l.stream_through(&mut words);
        assert_eq!(loads.iter().sum::<u64>(), (1u64 << 12) * 8);
        #[cfg(not(feature = "faults"))]
        assert!(words.iter().all(|&w| w == 0xAA));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn stream_through_corrupts_when_channel_fault_armed() {
        use poseidon_faults::{arm, disarm, FaultKind, FaultPlan, FaultSite};
        let _lock = poseidon_faults::test_lock();
        let l = layout();
        arm(FaultPlan::transient(
            FaultSite::HbmChannel,
            FaultKind::BitFlip,
            0xC0FFEE,
        ));
        let mut words = vec![0u64; 1 << 10];
        l.stream_through(&mut words);
        disarm();
        assert_eq!(
            words.iter().filter(|&&w| w != 0).count(),
            1,
            "exactly one word corrupted in flight"
        );
    }

    #[test]
    fn channel_mapping_cycles() {
        let l = layout();
        assert_eq!(l.channel_of(0), 0);
        assert_eq!(l.channel_of(256), 1);
        assert_eq!(l.channel_of(256 * 32), 0);
        assert_eq!(l.channel_of(255), 0);
    }
}
