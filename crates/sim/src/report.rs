//! The simulator driver: executes an operation trace against the timing,
//! energy, and resource models and assembles the per-benchmark report
//! every table/figure regenerator reads from.

use poseidon_core::decompose::{BasicOp, OpTrace};
use poseidon_core::operator::{Operator, OperatorCounts};

use crate::config::AcceleratorConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::timing::{time_op, OpTiming};

/// The modelled outcome of running one trace.
#[derive(Debug, Clone)]
pub struct Report {
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// Total HBM bytes moved.
    pub hbm_bytes: u64,
    /// Average bandwidth utilisation over the run (time-weighted).
    pub bandwidth_utilisation: f64,
    /// Per-basic-operation share of wall time (Fig. 8).
    pub time_by_op: Vec<(BasicOp, f64)>,
    /// Per-basic-operation bandwidth utilisation (Table VII).
    pub utilisation_by_op: Vec<(BasicOp, f64)>,
    /// Per-operator cycle totals (Fig. 9).
    pub cycles_by_operator: OperatorCounts,
    /// Total element-operation counts.
    pub operator_counts: OperatorCounts,
    /// Energy breakdown (Fig. 12) and EDP (Table X).
    pub energy: EnergyBreakdown,
}

impl Report {
    /// Total milliseconds (the Table VI metric).
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy.edp(self.seconds)
    }

    /// Percentage of wall time spent in `op` (0 when unused).
    pub fn time_share_percent(&self, op: BasicOp) -> f64 {
        let t: f64 = self.time_by_op.iter().map(|(_, s)| s).sum();
        if t == 0.0 {
            return 0.0;
        }
        self.time_by_op
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| 100.0 * s / t)
            .unwrap_or(0.0)
    }

    /// Percentage of operator cycles spent in `operator` (Fig. 9).
    pub fn operator_share_percent(&self, operator: Operator) -> f64 {
        let c = self.cycles_by_operator;
        let total = (c.ma + c.mm + c.ntt + c.auto) as f64;
        if total == 0.0 {
            return 0.0;
        }
        100.0 * c.get(operator) as f64 / total
    }
}

/// The analytical simulator: a configuration plus an energy model.
///
/// # Examples
///
/// ```
/// use poseidon_sim::{AcceleratorConfig, Benchmark, Simulator};
/// let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
/// let report = sim.run(&Benchmark::PackedBootstrapping.trace());
/// assert!(report.millis() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: AcceleratorConfig,
    energy: EnergyModel,
}

impl Simulator {
    /// Creates a simulator with the default energy model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        Self {
            cfg,
            energy: EnergyModel::default(),
        }
    }

    /// Creates a simulator with an explicit energy model.
    pub fn with_energy_model(cfg: AcceleratorConfig, energy: EnergyModel) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        Self { cfg, energy }
    }

    /// The machine configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Times a single basic operation (Table IV's per-operation metric).
    pub fn time_single(&self, op: BasicOp, p: &poseidon_core::OpParams) -> OpTiming {
        time_op(op, p, 1, &self.cfg)
    }

    /// Ops/second throughput of a basic operation (Table IV's unit).
    pub fn ops_per_second(&self, op: BasicOp, p: &poseidon_core::OpParams) -> f64 {
        1.0 / self.time_single(op, p).seconds
    }

    /// Runs a trace and assembles the report.
    pub fn run(&self, trace: &OpTrace) -> Report {
        let mut seconds = 0.0f64;
        let mut hbm_bytes = 0u64;
        let mut busy_weighted = 0.0f64;
        let mut time_by_op: Vec<(BasicOp, f64)> = Vec::new();
        let mut util_acc: Vec<(BasicOp, f64, f64)> = Vec::new(); // op, time, busy
        let mut cycles = OperatorCounts::ZERO;
        let mut counts = OperatorCounts::ZERO;

        for (op, params, count) in trace.entries() {
            let t = time_op(*op, params, *count, &self.cfg);
            seconds += t.seconds;
            hbm_bytes += t.hbm_bytes;
            busy_weighted += t.bandwidth_utilisation * t.seconds;
            cycles += t.cycles_by_operator;
            counts += op.operator_counts(params) * *count;
            match time_by_op.iter_mut().find(|(o, _)| o == op) {
                Some((_, acc)) => *acc += t.seconds,
                None => time_by_op.push((*op, t.seconds)),
            }
            match util_acc.iter_mut().find(|(o, _, _)| o == op) {
                Some((_, ts, bs)) => {
                    *ts += t.seconds;
                    *bs += t.bandwidth_utilisation * t.seconds;
                }
                None => util_acc.push((*op, t.seconds, t.bandwidth_utilisation * t.seconds)),
            }
        }

        let utilisation_by_op = util_acc
            .into_iter()
            .map(|(op, ts, bs)| (op, if ts > 0.0 { bs / ts } else { 0.0 }))
            .collect();
        let energy = self.energy.energy(&counts, hbm_bytes, seconds);
        Report {
            seconds,
            hbm_bytes,
            bandwidth_utilisation: if seconds > 0.0 {
                busy_weighted / seconds
            } else {
                0.0
            },
            time_by_op,
            utilisation_by_op,
            cycles_by_operator: cycles,
            operator_counts: counts,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Benchmark;

    fn sim() -> Simulator {
        Simulator::new(AcceleratorConfig::poseidon_u280())
    }

    #[test]
    fn all_benchmarks_complete_with_positive_time() {
        let sim = sim();
        for b in Benchmark::ALL {
            let r = sim.run(&b.trace());
            assert!(r.seconds > 0.0, "{}", b.name());
            assert!(r.hbm_bytes > 0);
            assert!(r.bandwidth_utilisation > 0.0 && r.bandwidth_utilisation <= 1.0);
        }
    }

    #[test]
    fn hfauto_beats_naive_on_every_benchmark() {
        // Table IX's shape: Poseidon-Auto degrades substantially.
        let hf = Simulator::new(AcceleratorConfig::poseidon_u280());
        let naive = Simulator::new(AcceleratorConfig::poseidon_naive_auto());
        for b in Benchmark::ALL {
            let t = b.trace();
            let r_hf = hf.run(&t).seconds;
            let r_naive = naive.run(&t).seconds;
            assert!(r_naive > r_hf, "{}", b.name());
        }
    }

    #[test]
    fn mm_and_ntt_dominate_operator_time() {
        // Fig. 9: MM and NTT take the largest proportion.
        let r = sim().run(&Benchmark::PackedBootstrapping.trace());
        let mm = r.operator_share_percent(poseidon_core::Operator::Mm);
        let ntt = r.operator_share_percent(poseidon_core::Operator::Ntt);
        let ma = r.operator_share_percent(poseidon_core::Operator::Ma);
        let auto = r.operator_share_percent(poseidon_core::Operator::Automorphism);
        assert!(
            mm + ntt > ma + auto,
            "mm={mm} ntt={ntt} ma={ma} auto={auto}"
        );
    }

    #[test]
    fn time_shares_sum_to_hundred() {
        let r = sim().run(&Benchmark::Lstm.trace());
        let sum: f64 = poseidon_core::BasicOp::ALL
            .iter()
            .map(|&op| r.time_share_percent(op))
            .sum();
        assert!((sum - 100.0).abs() < 1e-6, "{sum}");
    }

    #[test]
    fn lane_sweep_shows_saturation_in_edp() {
        // Fig. 11: execution time and EDP improve with lanes, with
        // diminishing returns.
        let t = Benchmark::ResNet20.trace();
        let mut secs = Vec::new();
        for lanes in [64usize, 128, 256, 512] {
            let cfg = AcceleratorConfig {
                lanes,
                ..AcceleratorConfig::poseidon_u280()
            };
            secs.push(Simulator::new(cfg).run(&t).seconds);
        }
        assert!(secs.windows(2).all(|w| w[1] <= w[0] * 1.0001), "{secs:?}");
        let gain_lo = secs[0] / secs[1];
        let gain_hi = secs[2] / secs[3];
        assert!(gain_lo >= gain_hi, "{gain_lo} vs {gain_hi}");
    }

    #[test]
    fn per_op_utilisation_is_bounded() {
        let r = sim().run(&Benchmark::LogisticRegression.trace());
        for (op, u) in &r.utilisation_by_op {
            assert!(*u >= 0.0 && *u <= 1.0, "{}: {u}", op.name());
        }
    }
}
