//! Accelerator-timed cost model for the evaluation planner.
//!
//! The planner's default [`TableCostModel`](poseidon_core::plan::TableCostModel)
//! ranks graph ops with hand-set relative weights. [`SimCostModel`] replaces
//! the table with this crate's timing model: each graph op is mapped onto its
//! basic operation, timed by [`timing::time_op`] under an
//! [`AcceleratorConfig`], and charged its wall-clock occupancy in cycles —
//! `max(compute, traffic/bandwidth)`, the same overlap rule the simulator
//! uses. Streaming ops therefore price in their HBM traffic (a plain `HAdd`
//! is bandwidth-bound), which a compute-only table cannot express.
//!
//! The model plugs into [`plan::try_plan_with`](poseidon_core::plan) as the
//! scheduler's tie-breaker and into the bootstrap-insertion pass's
//! refresh-vs-reencrypt comparison.

use poseidon_core::decompose::{BasicOp, OpParams};
use poseidon_core::plan::{CostModel, GraphOp};

use crate::config::AcceleratorConfig;
use crate::timing;

/// [`CostModel`] backed by the accelerator timing model.
#[derive(Debug, Clone)]
pub struct SimCostModel {
    cfg: AcceleratorConfig,
    n: usize,
    special: usize,
}

impl SimCostModel {
    /// Creates a model for ring degree `n` and special-basis size
    /// `special` on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two `>= 8` (the [`OpParams`]
    /// contract).
    pub fn new(cfg: AcceleratorConfig, n: usize, special: usize) -> Self {
        // Validate eagerly so a bad ring degree fails at construction,
        // not mid-schedule.
        let _ = OpParams::new(n, 1, special.max(1));
        Self {
            cfg,
            n,
            special: special.max(1),
        }
    }

    /// The paper's U280 build at ring degree `n` (2 special primes).
    pub fn u280(n: usize) -> Self {
        Self::new(AcceleratorConfig::poseidon_u280(), n, 2)
    }

    fn params(&self, level: usize) -> OpParams {
        OpParams::new(self.n, level + 1, self.special)
    }

    /// Wall-clock occupancy of `count` instances of `op`, in cycles.
    fn cycles(&self, op: BasicOp, level: usize, count: u64) -> u64 {
        let t = timing::time_op(op, &self.params(level), count, &self.cfg);
        (t.seconds * self.cfg.clock_hz).ceil() as u64
    }
}

impl CostModel for SimCostModel {
    fn op_cost(&self, op: &GraphOp, level: usize) -> u64 {
        match op {
            // Pure wiring: no arithmetic, no HBM round trip of its own.
            GraphOp::Input { .. } | GraphOp::DropToLevel { .. } => 0,
            GraphOp::Add | GraphOp::Sub | GraphOp::AddPlain { .. } => {
                self.cycles(BasicOp::HAdd, level, 1)
            }
            GraphOp::MulPlain { .. } => self.cycles(BasicOp::PMult, level, 1),
            GraphOp::Mul | GraphOp::Square => self.cycles(BasicOp::CMult, level, 1),
            GraphOp::Rescale => self.cycles(BasicOp::Rescale, level, 1),
            GraphOp::Rotate { .. } | GraphOp::Conjugate => self.cycles(BasicOp::Rotation, level, 1),
            GraphOp::RotateMany { steps } => {
                // Hoisting shares one RNS decomposition across the batch:
                // k rotations minus the k-1 redundant Modup passes.
                let k = steps.len().max(1) as u64;
                let full = self.cycles(BasicOp::Rotation, level, k);
                let saved = self.cycles(BasicOp::Modup, level, k - 1);
                full.saturating_sub(saved).max(1)
            }
            GraphOp::Bootstrap { target_level } => self.bootstrap_cost(*target_level),
        }
    }

    fn bootstrap_cost(&self, target_level: usize) -> u64 {
        // Compressed packed-bootstrap pipeline (workloads.rs's Table V
        // shape, scaled to short chains): three BSGS matrix levels for
        // CoeffToSlot, a Chebyshev EvalMod segment, three more matrix
        // levels for SlotToCoeff. Component counts decline from the
        // raised chain top down to the refreshed level.
        let top = target_level + 7;
        let mut total = 0u64;
        for d in 0..3 {
            let lvl = top - d;
            total += self.cycles(BasicOp::Rotation, lvl, 8);
            total += self.cycles(BasicOp::PMult, lvl, 16);
            total += self.cycles(BasicOp::HAdd, lvl, 16);
            total += self.cycles(BasicOp::Rescale, lvl, 1);
        }
        for d in 3..4 {
            let lvl = top - d;
            total += self.cycles(BasicOp::CMult, lvl, 11);
            total += self.cycles(BasicOp::PMult, lvl, 22);
            total += self.cycles(BasicOp::HAdd, lvl, 33);
            total += self.cycles(BasicOp::Rescale, lvl, 11);
        }
        for d in 0..3 {
            let lvl = target_level + 3 - d;
            total += self.cycles(BasicOp::Rotation, lvl, 8);
            total += self.cycles(BasicOp::PMult, lvl, 16);
            total += self.cycles(BasicOp::HAdd, lvl, 16);
            total += self.cycles(BasicOp::Rescale, lvl, 1);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_core::plan::TableCostModel;

    fn model() -> SimCostModel {
        SimCostModel::u280(1 << 12)
    }

    #[test]
    fn keyswitch_ops_dominate_streaming_ops() {
        let m = model();
        let add = m.op_cost(&GraphOp::Add, 6);
        let mul = m.op_cost(&GraphOp::Mul, 6);
        let rot = m.op_cost(&GraphOp::Rotate { steps: 1 }, 6);
        assert!(mul > add, "{mul} vs {add}");
        assert!(rot > add, "{rot} vs {add}");
    }

    #[test]
    fn hoisted_batch_beats_individual_rotations() {
        let m = model();
        let single = m.op_cost(&GraphOp::Rotate { steps: 1 }, 6);
        let batch = m.op_cost(
            &GraphOp::RotateMany {
                steps: vec![1, 2, 3, 4],
            },
            6,
        );
        assert!(batch < 4 * single, "{batch} vs 4x{single}");
        assert!(batch > single, "{batch} vs {single}");
    }

    #[test]
    fn cost_grows_with_level() {
        let m = model();
        assert!(m.op_cost(&GraphOp::Mul, 10) > m.op_cost(&GraphOp::Mul, 2));
        assert!(m.op_cost(&GraphOp::Add, 10) > m.op_cost(&GraphOp::Add, 2));
    }

    #[test]
    fn ordering_agrees_with_the_table_model_on_keyswitch_dominance() {
        // The models disagree on HAdd vs PMult (the sim knows PMult moves
        // *less* HBM traffic and both are bandwidth-bound), but the
        // decision that actually steers tie-breaking — keyswitch-bearing
        // ops cost more than elementwise ops — must hold in both.
        let sim = model();
        let table = TableCostModel::default();
        for cheap in [GraphOp::Add, GraphOp::MulPlain { pt: 0 }] {
            for dear in [GraphOp::Mul, GraphOp::Rotate { steps: 1 }] {
                assert!(
                    sim.op_cost(&cheap, 6) < sim.op_cost(&dear, 6),
                    "sim: {cheap:?} !< {dear:?}"
                );
                assert!(
                    table.op_cost(&cheap, 6) < table.op_cost(&dear, 6),
                    "table: {cheap:?} !< {dear:?}"
                );
            }
        }
    }

    #[test]
    fn bootstrap_is_far_costlier_than_one_multiplication() {
        let m = model();
        let bs = m.bootstrap_cost(4);
        let mul = m.op_cost(&GraphOp::Mul, 4);
        assert!(bs > 20 * mul, "{bs} vs {mul}");
    }
}
