//! Design-space sweeps — the ablations behind the paper's §VI discussion
//! of its three key design parameters (fusion degree, parallelism,
//! scratchpad volume) plus the keyswitching digit count.
//!
//! Each sweep runs a benchmark trace across one configuration axis and
//! reports execution time and EDP, exposing the trade-off curve the paper
//! argues from.

use poseidon_core::decompose::OpTrace;

use crate::config::AcceleratorConfig;
use crate::report::Simulator;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value (cast to f64 for uniform reporting).
    pub x: f64,
    /// Execution time in milliseconds.
    pub millis: f64,
    /// Energy-delay product in J·s.
    pub edp: f64,
    /// Average bandwidth utilisation.
    pub bandwidth_utilisation: f64,
}

fn run_point(cfg: AcceleratorConfig, trace: &OpTrace, x: f64) -> SweepPoint {
    let r = Simulator::new(cfg).run(trace);
    SweepPoint {
        x,
        millis: r.millis(),
        edp: r.edp(),
        bandwidth_utilisation: r.bandwidth_utilisation,
    }
}

/// Lane-count sweep (the paper's Fig. 11 axis).
pub fn sweep_lanes(trace: &OpTrace, lanes: &[usize]) -> Vec<SweepPoint> {
    lanes
        .iter()
        .map(|&l| {
            run_point(
                AcceleratorConfig {
                    lanes: l,
                    ..AcceleratorConfig::poseidon_u280()
                },
                trace,
                l as f64,
            )
        })
        .collect()
}

/// NTT fusion-degree sweep (the paper's Fig. 10 axis, at system level).
pub fn sweep_fusion(trace: &OpTrace, ks: &[u32]) -> Vec<SweepPoint> {
    ks.iter()
        .map(|&k| {
            run_point(
                AcceleratorConfig {
                    ntt_fusion_k: k,
                    ..AcceleratorConfig::poseidon_u280()
                },
                trace,
                k as f64,
            )
        })
        .collect()
}

/// Scratchpad-capacity sweep (the §VI "8.6 MB is enough" argument): time
/// should degrade once working sets spill, then plateau.
pub fn sweep_scratchpad(trace: &OpTrace, megabytes: &[f64]) -> Vec<SweepPoint> {
    megabytes
        .iter()
        .map(|&mb| {
            run_point(
                AcceleratorConfig {
                    scratchpad_bytes: (mb * 1024.0 * 1024.0) as u64,
                    ..AcceleratorConfig::poseidon_u280()
                },
                trace,
                mb,
            )
        })
        .collect()
}

/// HBM-bandwidth sweep (the §VI bandwidth-vs-parallelism balance): the
/// knee locates where the design stops being bandwidth-bound.
pub fn sweep_bandwidth(trace: &OpTrace, gbytes_per_sec: &[f64]) -> Vec<SweepPoint> {
    gbytes_per_sec
        .iter()
        .map(|&gb| {
            run_point(
                AcceleratorConfig {
                    hbm_bytes_per_sec: gb * 1e9,
                    ..AcceleratorConfig::poseidon_u280()
                },
                trace,
                gb,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Benchmark;

    fn trace() -> OpTrace {
        Benchmark::PackedBootstrapping.trace()
    }

    #[test]
    fn lane_sweep_is_monotone_with_diminishing_returns() {
        let pts = sweep_lanes(&trace(), &[64, 128, 256, 512]);
        assert!(pts.windows(2).all(|w| w[1].millis <= w[0].millis * 1.0001));
        let gain_lo = pts[0].millis / pts[1].millis;
        let gain_hi = pts[2].millis / pts[3].millis;
        assert!(gain_lo >= gain_hi);
    }

    #[test]
    fn fusion_sweep_prefers_moderate_k() {
        let pts = sweep_fusion(&trace(), &[1, 2, 3, 4, 5, 6]);
        let best = pts
            .iter()
            .min_by(|a, b| a.millis.partial_cmp(&b.millis).unwrap())
            .unwrap();
        assert!(best.x >= 2.0, "k=1 must not win, got k={}", best.x);
        // k = 3 must beat k = 1 clearly.
        assert!(pts[2].millis < pts[0].millis);
    }

    #[test]
    fn scratchpad_sweep_is_monotone_and_saturates() {
        let pts = sweep_scratchpad(&trace(), &[0.5, 2.0, 8.6, 32.0, 128.0]);
        // More scratchpad never hurts.
        assert!(pts.windows(2).all(|w| w[1].millis <= w[0].millis * 1.0001));
        // Once every working set fits (32 MB covers the deepest ops at
        // N = 2^16), further capacity gains nothing.
        assert!((pts[4].millis - pts[3].millis).abs() < pts[3].millis * 0.01);
        // Spilling at 0.5 MB must be visibly worse than the paper's 8.6 MB.
        assert!(pts[0].millis > pts[2].millis);
    }

    #[test]
    fn bandwidth_sweep_saturates() {
        let pts = sweep_bandwidth(&trace(), &[60.0, 230.0, 460.0, 1840.0]);
        assert!(pts.windows(2).all(|w| w[1].millis <= w[0].millis * 1.0001));
        // Ample bandwidth: utilisation drops as compute becomes binding.
        assert!(pts[3].bandwidth_utilisation < pts[0].bandwidth_utilisation);
    }
}
