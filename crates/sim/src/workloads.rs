//! Workload (operation-trace) generators for the paper's four benchmarks
//! (Table V): HELR logistic regression, LSTM inference, ResNet-20
//! inference, and fully packed bootstrapping.
//!
//! The paper does not publish per-benchmark operation counts, so each
//! generator reconstructs the trace from the benchmark's algorithmic
//! structure at the paper's parameters (`N = 2^16`, deep modulus chains),
//! with the constants documented inline. Absolute totals are therefore a
//! model calibration; the *mix* of basic operations — what Figs. 8/9 and
//! Table VII measure — follows from structure, not tuning.

use poseidon_core::decompose::{BasicOp, OpParams, OpTrace};

/// The four evaluation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// HELR logistic-regression training, 10 iterations, L = 38, two
    /// bootstrapping operations supporting them.
    LogisticRegression,
    /// LSTM inference: 50 iterations of `y ← σ(W0·y + W1·x)` with
    /// 128×128 weight matrices; 50 bootstrapping operations.
    Lstm,
    /// ResNet-20 single-image inference with FHE convolutions.
    ResNet20,
    /// One fully packed bootstrapping, L = 3 refreshed to L = 57.
    PackedBootstrapping,
}

impl Benchmark {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::LogisticRegression,
        Benchmark::Lstm,
        Benchmark::ResNet20,
        Benchmark::PackedBootstrapping,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::LogisticRegression => "LR",
            Benchmark::Lstm => "LSTM",
            Benchmark::ResNet20 => "ResNet-20",
            Benchmark::PackedBootstrapping => "Packed Bootstrapping",
        }
    }

    /// Builds the operation trace at the paper's scale.
    pub fn trace(&self) -> OpTrace {
        match self {
            Benchmark::LogisticRegression => logistic_regression_trace(),
            Benchmark::Lstm => lstm_trace(),
            Benchmark::ResNet20 => resnet20_trace(),
            Benchmark::PackedBootstrapping => packed_bootstrap_trace(),
        }
    }
}

const N: usize = 1 << 16;
const SPECIAL: usize = 2;

fn p(components: usize) -> OpParams {
    OpParams::new(N, components, SPECIAL)
}

/// One fully packed bootstrapping, refreshing L = 3 → 57 (paper Table V).
///
/// Structure mirrors the standard pipeline ([30]): CoeffToSlot as three
/// BSGS-factored DFT matrix levels, EvalMod as a degree-63 scaled-sine
/// Chebyshev evaluation with double-angle iterations, SlotToCoeff as three
/// more matrix levels. Component counts decline along the pipeline.
pub fn packed_bootstrap_trace() -> OpTrace {
    let mut t = OpTrace::new();
    // ModRaise is pure data movement; the trace starts at the full chain.
    // --- CoeffToSlot: 3 matrix levels, BSGS with ~16 rotations + 32
    //     PMults + 32 HAdds each, one rescale per level.
    for (lvl, comp) in [(0usize, 57usize), (1, 56), (2, 55)] {
        let _ = lvl;
        t.push(BasicOp::Rotation, p(comp), 8);
        t.push(BasicOp::PMult, p(comp), 16);
        t.push(BasicOp::HAdd, p(comp), 16);
        t.push(BasicOp::Rescale, p(comp), 1);
    }
    // --- EvalMod: Chebyshev degree 63 → ~11 non-scalar products + 3
    //     double-angle squarings, with plaintext folds and rescales.
    for comp in (44..=54).rev() {
        t.push(BasicOp::CMult, p(comp), 1);
        t.push(BasicOp::PMult, p(comp), 2);
        t.push(BasicOp::HAdd, p(comp), 3);
        t.push(BasicOp::Rescale, p(comp), 1);
    }
    // --- SlotToCoeff: 3 matrix levels at the regained low end.
    for comp in [43usize, 42, 41] {
        t.push(BasicOp::Rotation, p(comp), 8);
        t.push(BasicOp::PMult, p(comp), 16);
        t.push(BasicOp::HAdd, p(comp), 16);
        t.push(BasicOp::Rescale, p(comp), 1);
    }
    t
}

/// HELR logistic regression: 10 training iterations at L = 38 with two
/// supporting bootstraps amortised in (paper Table V).
///
/// Per iteration: the batched gradient needs one inner product
/// (rotations-and-adds reduction over log2(features) ≈ 8 steps), a degree-3
/// sigmoid approximation (2 CMults), and the weight update (PMults/HAdds).
pub fn logistic_regression_trace() -> OpTrace {
    let mut t = OpTrace::new();
    let iters = 10u64;
    for it in 0..iters {
        // Levels decline across iterations until a bootstrap refreshes.
        let comp = 38 - 3 * (it as usize % 5);
        t.push(BasicOp::PMult, p(comp), 4);
        t.push(BasicOp::CMult, p(comp), 2);
        t.push(BasicOp::Rotation, p(comp), 3);
        t.push(BasicOp::HAdd, p(comp), 10);
        t.push(BasicOp::Rescale, p(comp), 3);
    }
    // Two bootstraps support the 10 iterations; they run at the smaller
    // effective chain (amortised share ≈ 0.35 of a full packed bootstrap
    // each, matching HELR's partial-slots refresh).
    let boot = packed_bootstrap_trace();
    for (op, params, count) in boot.entries() {
        t.push(*op, *params, (count * 2 * 8 / 100).max(1));
    }
    t
}

/// LSTM inference: 50 iterations of `y ← σ(W0·y + W1·x)` with 128×128
/// matrices (paper Table V), 50 bootstraps.
pub fn lstm_trace() -> OpTrace {
    let mut t = OpTrace::new();
    let iters = 50u64;
    for _ in 0..iters {
        let comp = 14usize;
        // Two 128×128 matrix-vector products, diagonal method with BSGS:
        // ~2·√128 ≈ 23 rotations and 128 PMults each.
        t.push(BasicOp::Rotation, p(comp), 2 * 23);
        t.push(BasicOp::PMult, p(comp), 2 * 80);
        t.push(BasicOp::HAdd, p(comp), 2 * 80);
        // Cubic sigmoid: 2 CMults + 1 PMult.
        t.push(BasicOp::CMult, p(comp), 2);
        t.push(BasicOp::PMult, p(comp), 1);
        t.push(BasicOp::Rescale, p(comp), 4);
    }
    // One bootstrap per iteration.
    let boot = packed_bootstrap_trace();
    for (op, params, count) in boot.entries() {
        t.push(*op, *params, (count * iters * 7 / 100).max(1));
    }
    t
}

/// ResNet-20 inference (paper Table V): 20 convolutional layers expressed
/// as FHE matrix products plus ReLU polynomial approximations, with
/// periodic bootstrapping.
pub fn resnet20_trace() -> OpTrace {
    let mut t = OpTrace::new();
    // 19 conv layers + FC; channel-packed convolutions: per layer ~9
    // kernel taps × rotations plus per-tap PMults; ReLU ≈ degree-7 poly.
    for layer in 0..20usize {
        let comp = 24 - (layer % 6);
        let taps = if layer == 19 { 4 } else { 9 };
        t.push(BasicOp::Rotation, p(comp), 2 * taps as u64);
        t.push(BasicOp::PMult, p(comp), 16 * taps as u64);
        t.push(BasicOp::HAdd, p(comp), 16 * taps as u64);
        // ReLU polynomial: 3 CMult levels.
        t.push(BasicOp::CMult, p(comp), 3);
        t.push(BasicOp::Rescale, p(comp), 5);
    }
    // Bootstraps between residual blocks (≈ one per 2 layers · 0.9 share).
    let boot = packed_bootstrap_trace();
    for (op, params, count) in boot.entries() {
        t.push(*op, *params, count * 9);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_core::Operator;

    #[test]
    fn all_benchmarks_produce_nonempty_traces() {
        for b in Benchmark::ALL {
            let t = b.trace();
            assert!(!t.entries().is_empty(), "{}", b.name());
            assert!(t.operator_counts().total() > 0);
        }
    }

    #[test]
    fn bootstrap_uses_every_operator() {
        let c = packed_bootstrap_trace().operator_counts();
        for op in Operator::ALL {
            assert!(c.uses(op), "bootstrap must exercise {op}");
        }
    }

    #[test]
    fn keyswitch_bearing_ops_dominate_bootstrap() {
        // Fig. 8: Keyswitch-bearing ops (CMult/Rotation) take the largest
        // share of bootstrapping work.
        let per = packed_bootstrap_trace().per_op_counts();
        let total: u64 = per.iter().map(|(_, c)| c.total()).sum();
        let heavy: u64 = per
            .iter()
            .filter(|(op, _)| matches!(op, BasicOp::CMult | BasicOp::Rotation))
            .map(|(_, c)| c.total())
            .sum();
        assert!(heavy * 2 > total, "{heavy} of {total}");
    }

    #[test]
    fn lstm_is_the_heaviest_iteration_workload() {
        let lstm = lstm_trace().operator_counts().total();
        let lr = logistic_regression_trace().operator_counts().total();
        assert!(lstm > lr, "LSTM must outweigh LR");
    }
}
