//! Per-operation compute-cycle and HBM-traffic model.
//!
//! Compute: every operator core retires `lanes` element operations per
//! cycle when fed; an operation's compute cycles are the sum over
//! operators of `ceil(elements / lanes)`, with NTT phase counts scaled by
//! the fusion degree and the automorphism cost depending on the core
//! flavour (HFAuto: 4 C-wide stages per vector; naive: 1 element/cycle).
//!
//! Traffic: compulsory HBM words per operation (operand reads, key reads,
//! result writes), discounted when the working set fits the scratchpad
//! (temporal reuse) and inflated when it spills.
//!
//! Wall time = `max(compute_time, traffic / effective_bandwidth)` — the
//! overlap assumption of a double-buffered streaming design.

use poseidon_core::decompose::{BasicOp, OpParams};
use poseidon_core::operator::OperatorCounts;

use crate::config::{AcceleratorConfig, AutoMode};

/// Timing/traffic outcome for one (possibly repeated) basic operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Compute cycles (all repetitions).
    pub compute_cycles: u64,
    /// HBM bytes moved (all repetitions).
    pub hbm_bytes: u64,
    /// Wall-clock seconds under the overlap model.
    pub seconds: f64,
    /// Fraction of the op's wall time the HBM was busy (bandwidth
    /// utilisation, Table VII's quantity).
    pub bandwidth_utilisation: f64,
    /// Per-operator cycle breakdown (for Fig. 9).
    pub cycles_by_operator: OperatorCounts,
}

/// Computes cycles spent per operator for `counts` element operations.
pub fn cycles_by_operator(
    counts: &OperatorCounts,
    p: &OpParams,
    cfg: &AcceleratorConfig,
) -> OperatorCounts {
    let lanes = cfg.lanes as u64;
    let div = |x: u64| x.div_ceil(lanes);
    // NTT counts are element-phases for the *radix-2* formulation
    // (N·log2 N); fusion executes k radix-2 stages per pass, so the
    // fused machine needs elements·phases(k)/log2(N) per-element work.
    let log_n = p.n.trailing_zeros() as u64;
    let k = cfg.ntt_fusion_k as u64;
    let fused_phases = log_n.div_ceil(k);
    let ntt_fused_elems = counts.ntt * fused_phases / log_n.max(1);
    // Automorphism: HFAuto moves C elements per step through 4 stages
    // (4·N/C steps per length-N vector ⇒ 4 cycles per C elements);
    // the naive core maps one element per cycle.
    let auto_cycles = match cfg.auto_mode {
        AutoMode::HfAuto => 4 * counts.auto.div_ceil(lanes),
        AutoMode::Naive => counts.auto,
    };
    OperatorCounts {
        ma: div(counts.ma),
        mm: div(counts.mm),
        ntt: div(ntt_fused_elems),
        auto: auto_cycles,
        // SBT is fused into the MM/NTT/sign pipelines — no extra cycles,
        // recorded as zero so totals do not double-count.
        sbt: 0,
    }
}

/// Compulsory HBM words for one instance of `op` (reads + writes),
/// including keyswitching key streams, before scratchpad adjustment.
pub fn hbm_words(op: BasicOp, p: &OpParams) -> u64 {
    let n = p.n as u64;
    let l = p.components as u64;
    let k = p.special as u64;
    let ct = 2 * l * n; // one ciphertext at this level
    let key_stream = 2 * p.dnum as u64 * (l + k) * n; // per-digit key pairs
    match op {
        BasicOp::HAdd => 2 * ct + ct,               // read 2 cts, write 1
        BasicOp::PMult => ct + l * n + ct,          // ct + plaintext + out
        BasicOp::CMult => 2 * ct + key_stream + ct, // cts + relin keys + out
        BasicOp::Rescale => ct + 2 * (l.saturating_sub(1).max(1)) * n,
        BasicOp::Keyswitch => l * n + key_stream + ct, // poly + keys + out pair
        BasicOp::Rotation => ct + key_stream + ct,     // ct + galois keys + out
        BasicOp::Modup => l * n + (l + k) * n,
        BasicOp::Moddown => (l + k) * n + l * n,
    }
}

/// Scratchpad adjustment: operations whose working set fits enjoy reuse
/// (keys stream regardless); spilling working sets re-fetch a fraction.
fn scratchpad_factor(op: BasicOp, p: &OpParams, cfg: &AcceleratorConfig) -> f64 {
    let working_set = 2 * p.components as u64 * p.n as u64 * cfg.word_bytes;
    if working_set <= cfg.scratchpad_bytes {
        // Rescale and the conversions iterate over resident data (the
        // paper's "frequent reuse of the small-scale data" for Rescale).
        match op {
            BasicOp::Rescale | BasicOp::Modup | BasicOp::Moddown => 0.6,
            _ => 1.0,
        }
    } else {
        let over = working_set as f64 / cfg.scratchpad_bytes as f64;
        1.0 + 0.5 * (over - 1.0).min(2.0)
    }
}

/// Times `count` instances of `op` under `p` on `cfg`.
pub fn time_op(op: BasicOp, p: &OpParams, count: u64, cfg: &AcceleratorConfig) -> OpTiming {
    let counts = op.operator_counts(p);
    let per_op_cycles = cycles_by_operator(&counts, p, cfg);
    let compute_cycles_one =
        per_op_cycles.ma + per_op_cycles.mm + per_op_cycles.ntt + per_op_cycles.auto;
    let words = (hbm_words(op, p) as f64 * scratchpad_factor(op, p, cfg)) as u64;
    let bytes_one = words * cfg.word_bytes;

    let compute_cycles = compute_cycles_one * count;
    let hbm_bytes = bytes_one * count;
    let compute_secs = compute_cycles as f64 / cfg.clock_hz;
    let traffic_secs = hbm_bytes as f64 / cfg.effective_bandwidth();
    let seconds = compute_secs.max(traffic_secs);
    let bandwidth_utilisation = if seconds > 0.0 {
        (traffic_secs / seconds).min(1.0)
    } else {
        0.0
    };
    OpTiming {
        compute_cycles,
        hbm_bytes,
        seconds,
        bandwidth_utilisation,
        cycles_by_operator: per_op_cycles * count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> OpParams {
        OpParams::new(1 << 16, 44, 2)
    }

    #[test]
    fn streaming_ops_are_bandwidth_bound() {
        // Paper Table VII: HAdd/PMult utilisation near 100 %.
        let cfg = AcceleratorConfig::poseidon_u280();
        let hadd = time_op(BasicOp::HAdd, &p(), 1, &cfg);
        assert!(hadd.bandwidth_utilisation > 0.9, "{hadd:?}");
        let pm = time_op(BasicOp::PMult, &p(), 1, &cfg);
        assert!(pm.bandwidth_utilisation > 0.9, "{pm:?}");
    }

    #[test]
    fn rescale_is_compute_bound() {
        // Paper Table VII: Rescale has the lowest utilisation.
        let cfg = AcceleratorConfig::poseidon_u280();
        let rs = time_op(BasicOp::Rescale, &p(), 1, &cfg);
        let hadd = time_op(BasicOp::HAdd, &p(), 1, &cfg);
        assert!(
            rs.bandwidth_utilisation < hadd.bandwidth_utilisation,
            "{} vs {}",
            rs.bandwidth_utilisation,
            hadd.bandwidth_utilisation
        );
    }

    #[test]
    fn naive_auto_slows_rotation() {
        // Paper Table IX: an order of magnitude on auto-heavy paths.
        let cfg_hf = AcceleratorConfig::poseidon_u280();
        let cfg_naive = AcceleratorConfig::poseidon_naive_auto();
        let hf = time_op(BasicOp::Rotation, &p(), 1, &cfg_hf);
        let naive = time_op(BasicOp::Rotation, &p(), 1, &cfg_naive);
        assert!(naive.seconds > hf.seconds);
        assert!(naive.cycles_by_operator.auto > 64 * hf.cycles_by_operator.auto);
    }

    #[test]
    fn time_scales_linearly_with_count() {
        let cfg = AcceleratorConfig::poseidon_u280();
        let one = time_op(BasicOp::CMult, &p(), 1, &cfg);
        let ten = time_op(BasicOp::CMult, &p(), 10, &cfg);
        assert!((ten.seconds / one.seconds - 10.0).abs() < 1e-9);
        assert_eq!(ten.hbm_bytes, 10 * one.hbm_bytes);
    }

    #[test]
    fn more_lanes_reduce_compute_until_bandwidth_bound() {
        // Fig. 11's saturation behaviour.
        let p = p();
        let mut prev = f64::INFINITY;
        let mut times = Vec::new();
        for lanes in [64usize, 128, 256, 512] {
            let cfg = AcceleratorConfig {
                lanes,
                ..AcceleratorConfig::poseidon_u280()
            };
            let t = time_op(BasicOp::CMult, &p, 1, &cfg).seconds;
            assert!(t <= prev * 1.0001, "lanes={lanes}");
            prev = t;
            times.push(t);
        }
        // Speedup from 64→128 must exceed speedup from 256→512 (diminishing
        // returns as the op becomes bandwidth-bound).
        let gain_lo = times[0] / times[1];
        let gain_hi = times[2] / times[3];
        assert!(gain_lo >= gain_hi, "{gain_lo} vs {gain_hi}");
    }

    #[test]
    fn fused_ntt_reduces_cycles() {
        let p = p();
        let cfg_k1 = AcceleratorConfig {
            ntt_fusion_k: 1,
            ..AcceleratorConfig::poseidon_u280()
        };
        let cfg_k3 = AcceleratorConfig::poseidon_u280();
        let ks1 = time_op(BasicOp::Keyswitch, &p, 1, &cfg_k1);
        let ks3 = time_op(BasicOp::Keyswitch, &p, 1, &cfg_k3);
        assert!(ks3.compute_cycles < ks1.compute_cycles);
    }
}
