//! Published comparison data from the paper's evaluation section.
//!
//! These are the numbers the paper itself reports (its Tables IV, VI, VII,
//! IX) for Poseidon and for the systems it compares against. They are
//! embedded so the table regenerators can print *paper vs model* side by
//! side; every value here is labelled `published`, never produced by our
//! model. Cells the provided text does not legibly contain are `None`.

/// One basic-operation row of the paper's Table IV (operations/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Operation name.
    pub op: &'static str,
    /// Single-thread Xeon 6234 baseline (ops/s).
    pub cpu_ops: f64,
    /// over100x GPU [21] (ops/s), where reported.
    pub gpu_ops: Option<f64>,
    /// HEAX FPGA [32] (ops/s), where reported.
    pub heax_ops: Option<f64>,
    /// Poseidon's reported speedup over the CPU.
    pub poseidon_speedup: f64,
}

impl Table4Row {
    /// Poseidon ops/s implied by the CPU baseline and reported speedup.
    pub fn poseidon_ops(&self) -> f64 {
        self.cpu_ops * self.poseidon_speedup
    }
}

/// The paper's Table IV.
pub const TABLE4: [Table4Row; 6] = [
    Table4Row {
        op: "PMult",
        cpu_ops: 38.14,
        gpu_ops: Some(7407.0),
        heax_ops: Some(4161.0),
        poseidon_speedup: 349.0,
    },
    Table4Row {
        op: "CMult",
        cpu_ops: 0.38,
        gpu_ops: Some(57.0),
        heax_ops: Some(119.0),
        poseidon_speedup: 718.0,
    },
    Table4Row {
        op: "NTT",
        cpu_ops: 9.25,
        gpu_ops: None,
        heax_ops: None,
        poseidon_speedup: 1348.0,
    },
    Table4Row {
        op: "Keyswitch",
        cpu_ops: 0.4,
        gpu_ops: None,
        heax_ops: None,
        poseidon_speedup: 780.0,
    },
    Table4Row {
        op: "Rotation",
        cpu_ops: 0.39,
        gpu_ops: Some(61.0),
        heax_ops: None,
        poseidon_speedup: 774.0,
    },
    Table4Row {
        op: "Rescale",
        cpu_ops: 6.9,
        gpu_ops: Some(1574.0),
        heax_ops: None,
        poseidon_speedup: 572.0,
    },
];

/// Poseidon's reported full-benchmark execution times in ms (Table VI,
/// with the HFAuto design).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkTimes {
    /// Logistic regression (10 iterations).
    pub lr_ms: f64,
    /// LSTM inference.
    pub lstm_ms: f64,
    /// ResNet-20 inference.
    pub resnet_ms: f64,
    /// Packed bootstrapping.
    pub bootstrap_ms: f64,
}

/// Poseidon-HFAuto published times (Tables VI/IX).
pub const POSEIDON_TIMES: BenchmarkTimes = BenchmarkTimes {
    lr_ms: 72.98,
    lstm_ms: 1846.89,
    resnet_ms: 2661.23,
    bootstrap_ms: 127.45,
};

/// Poseidon-Auto ablation times (Table IX).
pub const POSEIDON_NAIVE_AUTO_TIMES: BenchmarkTimes = BenchmarkTimes {
    lr_ms: 729.8,
    lstm_ms: 14150.2,
    resnet_ms: 10543.1,
    bootstrap_ms: 1127.2,
};

/// Published bandwidth-utilisation table (paper Table VII), percent, per
/// benchmark column (LR, LSTM, ResNet-20, Packed Bootstrapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table7Row {
    /// Operation (or `Average`).
    pub op: &'static str,
    /// Utilisation per benchmark, percent.
    pub percent: [f64; 4],
}

/// The paper's Table VII.
pub const TABLE7: [Table7Row; 8] = [
    Table7Row {
        op: "HAdd",
        percent: [97.79, 97.69, 97.76, 63.29],
    },
    Table7Row {
        op: "PMult",
        percent: [97.65, 97.15, 97.48, 97.48],
    },
    Table7Row {
        op: "CMult",
        percent: [44.72, 55.55, 30.15, 72.35],
    },
    Table7Row {
        op: "Keyswitch",
        percent: [36.8, 47.47, 42.05, 63.29],
    },
    Table7Row {
        op: "Rotation",
        percent: [65.0, 32.39, 58.67, 48.67],
    },
    Table7Row {
        op: "Rescale",
        percent: [26.16, 29.98, 26.83, 26.83],
    },
    Table7Row {
        op: "Bootstrapping",
        percent: [46.39, 56.43, 52.18, 52.18],
    },
    Table7Row {
        op: "Average",
        percent: [42.78, 51.99, 48.08, 59.07],
    },
];

/// The paper's Table VIII: automorphism core resources and latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table8Row {
    /// Design name (`Auto` or `HFAuto`).
    pub design: &'static str,
    /// Flip-flops.
    pub ff: u64,
    /// LUTs.
    pub lut: u64,
    /// Latency in cycles as reported.
    pub latency_cycles: u64,
}

/// The paper's Table VIII (the provided text legibly gives the FF counts
/// and the HFAuto LUT/latency; the naive core's latency is one element per
/// cycle, i.e. N cycles for a length-N vector at N = 2^16 per-lane-group).
pub const TABLE8: [Table8Row; 2] = [
    Table8Row {
        design: "Auto",
        ff: 88,
        lut: 1_100,
        latency_cycles: 65_536,
    },
    Table8Row {
        design: "HFAuto",
        ff: 572,
        lut: 25_751,
        latency_cycles: 512,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_is_internally_consistent() {
        // CPU × speedup reproduces the Poseidon column the paper reports
        // (e.g. Keyswitch 0.4 × 780 = 312, Rotation 0.39 × 774 ≈ 302).
        let ks = TABLE4.iter().find(|r| r.op == "Keyswitch").unwrap();
        assert!((ks.poseidon_ops() - 312.0).abs() < 1.0);
        let rot = TABLE4.iter().find(|r| r.op == "Rotation").unwrap();
        assert!((rot.poseidon_ops() - 302.0).abs() < 1.0);
    }

    #[test]
    fn naive_auto_ablation_is_an_order_of_magnitude() {
        // Table IX headline: up to ~10× degradation without HFAuto.
        let ratio = POSEIDON_NAIVE_AUTO_TIMES.lr_ms / POSEIDON_TIMES.lr_ms;
        assert!(ratio > 9.0 && ratio < 11.0, "{ratio}");
    }

    #[test]
    fn table7_averages_are_within_range() {
        for row in TABLE7 {
            for v in row.percent {
                assert!(v > 0.0 && v <= 100.0, "{}: {v}", row.op);
            }
        }
    }

    #[test]
    fn hfauto_latency_advantage_matches_table8() {
        assert_eq!(TABLE8[0].latency_cycles / TABLE8[1].latency_cycles, 128);
    }
}
