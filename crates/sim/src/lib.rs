//! Analytical performance model of the Poseidon accelerator.
//!
//! The paper evaluates an RTL design on a real Alveo U280; this crate
//! substitutes a deterministic analytical model with the same observable
//! quantities (see DESIGN.md for the substitution argument):
//!
//! * [`config`] — the machine description: 512 vector lanes, 300 MHz, NTT
//!   fusion degree k, 8.6 MB scratchpad, 32-channel HBM2 at 460 GB/s, and
//!   the automorphism core flavour (naive Auto vs HFAuto).
//! * [`timing`] — per-operation compute-cycle and HBM-traffic model; an
//!   operation's wall time is `max(compute, traffic/bandwidth)`, which is
//!   what makes simple streaming ops bandwidth-bound and NTT-heavy ops
//!   compute-bound (paper Table VII's observation).
//! * [`plan_cost`] — [`SimCostModel`], the timing model exposed through the
//!   planner's `CostModel` trait so schedules and bootstrap-vs-reencrypt
//!   decisions price ops by accelerator occupancy instead of table weights.
//! * [`energy`] — per-element operator energies plus per-byte HBM energy;
//!   EDP for Table X / Fig. 11/12.
//! * [`resources`] — FPGA resource cost model (FF/LUT/DSP/BRAM) per core,
//!   scaling with lanes and fusion degree (Fig. 10, Tables VIII/XI/XII).
//! * [`workloads`] — operation-trace generators for the paper's four
//!   benchmarks (LR, LSTM, ResNet-20, packed bootstrapping).
//! * [`published`] — the paper's published comparison numbers (CPU, GPU,
//!   HEAX, F1+, CraterLake, BTS, ARK), clearly labelled as published data.
//! * [`report`] — executes a trace against the model and produces the
//!   tables/figures quantities (time, breakdowns, utilisation, energy).

pub mod config;
pub mod energy;
pub mod hbm;
pub mod plan_cost;
pub mod program;
pub mod published;
pub mod report;
pub mod resources;
pub mod schedule;
pub mod sweeps;
pub mod timing;
pub mod workloads;

pub use config::{AcceleratorConfig, AutoMode};
pub use plan_cost::SimCostModel;
pub use report::{Report, Simulator};
pub use workloads::Benchmark;
