//! FPGA resource cost model: FF / LUT / DSP / BRAM per operator core,
//! scaling with lane count, NTT fusion degree, and automorphism flavour.
//!
//! The constants are calibrated so the 512-lane, k = 3 configuration lands
//! in the neighbourhood of the paper's Table XI totals and so the fusion
//! sweep shows the Fig. 10 inflection at k = 3: fewer fused phases shrink
//! the inter-phase buffering (a per-phase register/control cost) while the
//! denser fused kernels grow multiplier and twiddle-storage cost — the sum
//! is minimised at a moderate radix.

use he_ntt::FusionAnalysis;

use crate::config::{AcceleratorConfig, AutoMode};

/// Resource counts for one core (or the whole design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
    /// DSP slices.
    pub dsp: u64,
    /// BRAM tiles (36 Kb).
    pub bram: u64,
}

impl Resources {
    fn scale(self, k: u64) -> Resources {
        Resources {
            ff: self.ff * k,
            lut: self.lut * k,
            dsp: self.dsp * k,
            bram: self.bram * k,
        }
    }

    fn add(self, o: Resources) -> Resources {
        Resources {
            ff: self.ff + o.ff,
            lut: self.lut + o.lut,
            dsp: self.dsp + o.dsp,
            bram: self.bram + o.bram,
        }
    }
}

/// Per-lane MA core cost (compare-and-correct adder).
pub fn ma_core_per_lane() -> Resources {
    Resources {
        ff: 70,
        lut: 95,
        dsp: 0,
        bram: 0,
    }
}

/// Per-lane MM core cost (32-bit multiplier + Barrett datapath).
pub fn mm_core_per_lane() -> Resources {
    Resources {
        ff: 210,
        lut: 260,
        dsp: 3,
        bram: 0,
    }
}

/// Per-lane standalone SBT core cost (shared reduction issue port).
pub fn sbt_core_per_lane() -> Resources {
    Resources {
        ff: 90,
        lut: 130,
        dsp: 1,
        bram: 0,
    }
}

/// Per-lane NTT core cost at fusion degree `k` for transform length `n`.
///
/// Structure: `phase_cost · ceil(log2 n / k)` (inter-phase buffering and
/// control) plus `mult_cost · (2^k − 1)` (fused-kernel multipliers per
/// lane) plus twiddle storage proportional to the fused twiddle count.
pub fn ntt_core_per_lane(k: u32, n: usize) -> Resources {
    let a = FusionAnalysis::for_radix(k);
    let log_n = n.trailing_zeros() as u64;
    let phases = log_n.div_ceil(k as u64);
    let mults = (1u64 << k) - 1;
    let twiddles = a.twiddles_fused_paper;
    Resources {
        ff: 160 * phases + 18 * twiddles + 30 * mults,
        lut: 200 * phases + 22 * twiddles + 40 * mults,
        dsp: phases + mults,
        // Twiddle/stage BRAM is shared by the 8 lanes of one 8-input core.
        bram: (phases + twiddles / 4).div_ceil(8).max(1),
    }
}

/// Automorphism core cost for the whole design (not per lane): the naive
/// core is a single index datapath; HFAuto adds the C-wide permutation
/// network, FIFOs, and address selection (paper Table VIII's trade).
pub fn auto_core(mode: AutoMode, lanes: usize) -> Resources {
    match mode {
        AutoMode::Naive => Resources {
            ff: 88,
            lut: 1_100,
            dsp: 0,
            bram: 1,
        },
        AutoMode::HfAuto => Resources {
            ff: 572,
            lut: 25_751,
            dsp: 0,
            bram: 1 + lanes as u64 / 8, // FIFO + diagonal BRAM banking
        },
    }
}

/// Whole-design resource estimate for a configuration at degree `n`.
pub fn design_resources(cfg: &AcceleratorConfig, n: usize) -> Resources {
    let lanes = cfg.lanes as u64;
    ma_core_per_lane()
        .scale(lanes)
        .add(mm_core_per_lane().scale(lanes))
        .add(sbt_core_per_lane().scale(lanes))
        .add(ntt_core_per_lane(cfg.ntt_fusion_k, n).scale(lanes))
        .add(auto_core(cfg.auto_mode, cfg.lanes))
}

/// Modelled average NTT execution time (µs) at fusion degree `k` — the
/// Fig. 10 bottom-right panel: fewer phases help until the fused kernel's
/// multiplier latency dominates.
pub fn ntt_time_us(k: u32, n: usize, cfg: &AcceleratorConfig) -> f64 {
    let log_n = n.trailing_zeros() as u64;
    let phases = log_n.div_ceil(k as u64) as f64;
    let elems_per_phase = n as f64 / cfg.lanes as f64;
    // Kernel issue penalty grows with the fused multiplier chain.
    let penalty = 1.0 + 0.08 * ((1u64 << k) - 1) as f64;
    phases * elems_per_phase * penalty / cfg.clock_hz * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_inflection_at_k3() {
        let cfg = AcceleratorConfig::poseidon_u280();
        let n = 4096;
        let cost: Vec<(u32, u64, u64, u64, f64)> = (2..=6)
            .map(|k| {
                let r = ntt_core_per_lane(k, n);
                (k, r.ff, r.lut, r.dsp, ntt_time_us(k, n, &cfg))
            })
            .collect();
        // Registers/LUTs minimal at k = 3 among the sweep.
        let min_ff = cost.iter().min_by_key(|c| c.1).unwrap().0;
        let min_lut = cost.iter().min_by_key(|c| c.2).unwrap().0;
        assert_eq!(min_ff, 3, "{cost:?}");
        assert_eq!(min_lut, 3, "{cost:?}");
        // Execution time minimal at k = 3 as well.
        let min_t = cost
            .iter()
            .min_by(|a, b| a.4.partial_cmp(&b.4).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_t, 3, "{cost:?}");
    }

    #[test]
    fn hfauto_costs_more_than_naive() {
        // Paper Table VIII: HFAuto spends resources to buy latency.
        let naive = auto_core(AutoMode::Naive, 512);
        let hf = auto_core(AutoMode::HfAuto, 512);
        assert!(hf.lut > 10 * naive.lut);
        assert!(hf.ff > naive.ff);
    }

    #[test]
    fn design_totals_are_plausible_for_u280() {
        // Sanity envelope: Alveo U280 has ~1.3 M LUTs, 9 k DSPs, 2 k BRAM.
        let r = design_resources(&AcceleratorConfig::poseidon_u280(), 1 << 16);
        assert!(r.lut > 100_000 && r.lut < 1_300_000, "LUT {}", r.lut);
        assert!(r.dsp > 1_000 && r.dsp < 9_024, "DSP {}", r.dsp);
        assert!(r.bram < 2_016, "BRAM {}", r.bram);
    }

    #[test]
    fn dsp_grows_with_fusion_degree_eventually() {
        let n = 1 << 12;
        assert!(ntt_core_per_lane(6, n).dsp > ntt_core_per_lane(3, n).dsp);
    }
}
