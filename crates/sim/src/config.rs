//! The accelerator machine description.

/// Automorphism core flavour (paper Tables VIII/IX ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AutoMode {
    /// Naive element-at-a-time index mapping (one element per cycle).
    Naive,
    /// HFAuto: four C-wide stages over `R = N/C` sub-vectors.
    HfAuto,
}

/// Configuration of the modelled accelerator.
///
/// Defaults reproduce the paper's Poseidon instance on the Alveo U280
/// (§IV-A, §V-A): 512 lanes, NTT fusion k = 3, 8.6 MB scratchpad, two HBM2
/// stacks totalling 32 channels at 460 GB/s peak, 32-bit words. The clock
/// (not stated in the paper) is modelled at 300 MHz — typical U280 timing
/// closure for a wide datapath.
///
/// # Examples
///
/// ```
/// use poseidon_sim::AcceleratorConfig;
/// let cfg = AcceleratorConfig::poseidon_u280();
/// assert_eq!(cfg.lanes, 512);
/// let narrow = AcceleratorConfig { lanes: 64, ..cfg };
/// assert_eq!(narrow.lanes, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Vector lanes `C` (elements processed per cycle per operator core).
    pub lanes: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// NTT fusion degree `k` (radix `2^k`).
    pub ntt_fusion_k: u32,
    /// Scratchpad capacity in bytes (8.6 MB in the paper).
    pub scratchpad_bytes: u64,
    /// Peak HBM bandwidth in bytes/second (460 GB/s theoretical).
    pub hbm_bytes_per_sec: f64,
    /// Number of HBM channels (two stacks × 16).
    pub hbm_channels: u32,
    /// Word size in bytes (32-bit datapath → 4).
    pub word_bytes: u64,
    /// Automorphism core flavour.
    pub auto_mode: AutoMode,
}

impl AcceleratorConfig {
    /// The paper's Poseidon instance.
    pub fn poseidon_u280() -> Self {
        Self {
            lanes: 512,
            clock_hz: 300.0e6,
            ntt_fusion_k: 3,
            scratchpad_bytes: (8.6 * 1024.0 * 1024.0) as u64,
            hbm_bytes_per_sec: 460.0e9,
            hbm_channels: 32,
            word_bytes: 4,
            auto_mode: AutoMode::HfAuto,
        }
    }

    /// The Table IX ablation: Poseidon with the naive automorphism core.
    pub fn poseidon_naive_auto() -> Self {
        Self {
            auto_mode: AutoMode::Naive,
            ..Self::poseidon_u280()
        }
    }

    /// Achievable HBM bandwidth after channel/access inefficiency (the
    /// model grants 85 % of peak to sequential polynomial streams).
    pub fn effective_bandwidth(&self) -> f64 {
        self.hbm_bytes_per_sec * 0.85
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.lanes.is_power_of_two() || self.lanes == 0 {
            return Err("lanes must be a nonzero power of two".into());
        }
        if self.clock_hz <= 0.0 || self.hbm_bytes_per_sec <= 0.0 {
            return Err("clock and bandwidth must be positive".into());
        }
        if self.ntt_fusion_k == 0 || self.ntt_fusion_k > 8 {
            return Err("fusion degree must be in 1..=8".into());
        }
        if self.word_bytes == 0 {
            return Err("word size must be positive".into());
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::poseidon_u280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_instance() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.lanes, 512);
        assert_eq!(c.hbm_channels, 32);
        assert_eq!(c.word_bytes, 4);
        assert_eq!(c.auto_mode, AutoMode::HfAuto);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = AcceleratorConfig {
            lanes: 100,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AcceleratorConfig {
            ntt_fusion_k: 0,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let c = AcceleratorConfig::default();
        assert!(c.effective_bandwidth() < c.hbm_bytes_per_sec);
    }
}
