//! Pipeline scheduling: double-buffered overlap of compute and HBM
//! transfers *across* consecutive operations.
//!
//! The per-op timing model (`timing`) already overlaps an operation's own
//! compute with its own traffic (`max(compute, traffic/BW)`); a streaming
//! accelerator additionally prefetches operation *i + 1*'s operands while
//! operation *i* computes. This module models that as a two-resource
//! pipeline — a compute engine and a memory engine — and produces both the
//! tighter makespan and a per-op timeline (for inspection and for the
//! `pipeline` regenerator).

use poseidon_core::decompose::{BasicOp, OpTrace};

use crate::config::AcceleratorConfig;
use crate::timing::time_op;

/// One scheduled operation instance (aggregated per trace entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// The basic operation.
    pub op: BasicOp,
    /// Repetition count of this entry.
    pub count: u64,
    /// When its memory phase starts (seconds from trace start).
    pub mem_start: f64,
    /// Memory phase duration.
    pub mem_dur: f64,
    /// When its compute phase starts.
    pub compute_start: f64,
    /// Compute phase duration.
    pub compute_dur: f64,
}

impl ScheduledOp {
    /// Completion time of this entry.
    pub fn end(&self) -> f64 {
        (self.mem_start + self.mem_dur).max(self.compute_start + self.compute_dur)
    }
}

/// The pipelined schedule of a trace.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-entry placement.
    pub ops: Vec<ScheduledOp>,
    /// Pipelined makespan in seconds.
    pub makespan: f64,
    /// The unpipelined (serial per-op) total for comparison.
    pub serial_seconds: f64,
}

impl Schedule {
    /// Pipelining gain: serial time / pipelined makespan (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.serial_seconds / self.makespan
        } else {
            1.0
        }
    }
}

/// Schedules a trace on the two-engine pipeline: each entry's memory phase
/// (operand/key streaming) must finish before its compute phase starts;
/// the memory engine serialises transfers; the compute engine serialises
/// operator work. This is classic two-stage pipeline scheduling.
pub fn schedule(trace: &OpTrace, cfg: &AcceleratorConfig) -> Schedule {
    let mut mem_free = 0.0f64;
    let mut compute_free = 0.0f64;
    let mut ops = Vec::with_capacity(trace.entries().len());
    let mut serial = 0.0f64;
    for (op, params, count) in trace.entries() {
        let t = time_op(*op, params, *count, cfg);
        serial += t.seconds;
        let mem_dur = t.hbm_bytes as f64 / cfg.effective_bandwidth();
        let compute_dur = t.compute_cycles as f64 / cfg.clock_hz;
        let mem_start = mem_free;
        let mem_end = mem_start + mem_dur;
        let compute_start = compute_free.max(mem_end);
        ops.push(ScheduledOp {
            op: *op,
            count: *count,
            mem_start,
            mem_dur,
            compute_start,
            compute_dur,
        });
        mem_free = mem_end;
        compute_free = compute_start + compute_dur;
    }
    let makespan = ops.iter().map(ScheduledOp::end).fold(0.0, f64::max);
    Schedule {
        ops,
        makespan,
        serial_seconds: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Benchmark;

    #[test]
    fn pipelining_never_slower_than_serial() {
        let cfg = AcceleratorConfig::poseidon_u280();
        for b in Benchmark::ALL {
            let s = schedule(&b.trace(), &cfg);
            assert!(
                s.makespan <= s.serial_seconds * 1.0001,
                "{}: {} vs {}",
                b.name(),
                s.makespan,
                s.serial_seconds
            );
            assert!(s.speedup() >= 1.0);
        }
    }

    #[test]
    fn phases_respect_dependencies() {
        let cfg = AcceleratorConfig::poseidon_u280();
        let s = schedule(&Benchmark::PackedBootstrapping.trace(), &cfg);
        for op in &s.ops {
            assert!(
                op.compute_start + 1e-12 >= op.mem_start + op.mem_dur,
                "compute must wait for operands"
            );
        }
        // Memory phases are serialised on the single HBM engine.
        for w in s.ops.windows(2) {
            assert!(w[1].mem_start + 1e-12 >= w[0].mem_start + w[0].mem_dur);
        }
    }

    #[test]
    fn mixed_workloads_benefit_from_overlap() {
        // A workload alternating bandwidth-bound and compute-bound ops
        // overlaps well; the pipeline gain must be visible (> 5 %).
        let cfg = AcceleratorConfig::poseidon_u280();
        let mut t = OpTrace::new();
        let p = poseidon_core::OpParams::new(1 << 16, 40, 2);
        for _ in 0..10 {
            t.push(BasicOp::HAdd, p, 4); // bandwidth-bound
            t.push(BasicOp::Rescale, p, 2); // compute-bound
        }
        let s = schedule(&t, &cfg);
        assert!(s.speedup() > 1.05, "speedup {}", s.speedup());
    }

    #[test]
    fn makespan_bounded_below_by_each_engine() {
        let cfg = AcceleratorConfig::poseidon_u280();
        let s = schedule(&Benchmark::Lstm.trace(), &cfg);
        let mem_total: f64 = s.ops.iter().map(|o| o.mem_dur).sum();
        let compute_total: f64 = s.ops.iter().map(|o| o.compute_dur).sum();
        assert!(s.makespan + 1e-9 >= mem_total.max(compute_total) * 0.999);
    }
}
