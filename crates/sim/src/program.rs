//! Programs: a loadable text representation of operation traces.
//!
//! Poseidon is *programmable* — higher-level FHE applications are streams
//! of basic operations dispatched to the operator cores. This module gives
//! those streams a concrete, parseable form so workloads can be stored,
//! diffed, and replayed:
//!
//! ```text
//! # packed bootstrapping, CoeffToSlot stage
//! n=65536 special=2 dnum=1
//! rotation  L=57 x16
//! pmult     L=57 x32
//! hadd      L=57 x32
//! rescale   L=57
//! ```
//!
//! One directive line sets the ring parameters; each instruction line is
//! `<op> L=<components> [x<count>]`. Comments (`#`) and blank lines are
//! ignored. [`parse`] validates everything and produces an
//! [`OpTrace`]; [`format`] is its inverse.

use poseidon_core::decompose::{BasicOp, OpParams, OpTrace};
use std::fmt;

/// A parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
    /// The offending token, when the error can be pinned on one (unknown
    /// operation names, unparsable numbers, stray tokens). `None` for
    /// structural errors (missing directives, range violations).
    pub token: Option<String>,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if let Some(t) = &self.token {
            write!(f, " (offending token `{t}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseProgramError {}

fn op_from_name(name: &str) -> Option<BasicOp> {
    Some(match name {
        "hadd" => BasicOp::HAdd,
        "pmult" => BasicOp::PMult,
        "cmult" => BasicOp::CMult,
        "rescale" => BasicOp::Rescale,
        "keyswitch" => BasicOp::Keyswitch,
        "rotation" => BasicOp::Rotation,
        "modup" => BasicOp::Modup,
        "moddown" => BasicOp::Moddown,
        _ => return None,
    })
}

fn op_to_name(op: BasicOp) -> &'static str {
    match op {
        BasicOp::HAdd => "hadd",
        BasicOp::PMult => "pmult",
        BasicOp::CMult => "cmult",
        BasicOp::Rescale => "rescale",
        BasicOp::Keyswitch => "keyswitch",
        BasicOp::Rotation => "rotation",
        BasicOp::Modup => "modup",
        BasicOp::Moddown => "moddown",
    }
}

/// Parses a program text into an operation trace.
///
/// # Errors
///
/// Returns the first syntax or validation error with its line number.
pub fn parse(text: &str) -> Result<OpTrace, ParseProgramError> {
    let mut n: Option<usize> = None;
    let mut special = 1usize;
    let mut dnum = 1usize;
    let mut trace = OpTrace::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| ParseProgramError {
            line: lineno,
            message: m,
            token: None,
        };
        let err_tok = |m: String, t: &str| ParseProgramError {
            line: lineno,
            message: m,
            token: Some(t.to_string()),
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens[0].contains('=') {
            // Directive line: key=value pairs.
            for t in &tokens {
                let (k, v) = t
                    .split_once('=')
                    .ok_or_else(|| err_tok(format!("malformed directive `{t}`"), t))?;
                let v: usize = v
                    .parse()
                    .map_err(|_| err_tok(format!("`{v}` is not a number"), t))?;
                match k {
                    "n" => n = Some(v),
                    "special" => special = v,
                    "dnum" => dnum = v,
                    other => return Err(err_tok(format!("unknown directive `{other}`"), t)),
                }
            }
            continue;
        }
        // Instruction line.
        let op = op_from_name(tokens[0])
            .ok_or_else(|| err_tok(format!("unknown operation `{}`", tokens[0]), tokens[0]))?;
        let n = n.ok_or_else(|| err("ring degree not set (need an `n=` directive)".into()))?;
        let mut components: Option<usize> = None;
        let mut count = 1u64;
        for t in &tokens[1..] {
            if let Some(v) = t.strip_prefix("L=") {
                components = Some(
                    v.parse()
                        .map_err(|_| err_tok(format!("`{v}` is not a component count"), t))?,
                );
            } else if let Some(v) = t.strip_prefix('x') {
                count = v
                    .parse()
                    .map_err(|_| err_tok(format!("`{v}` is not a repetition count"), t))?;
            } else {
                return Err(err_tok(format!("unexpected token `{t}`"), t));
            }
        }
        let components = components.ok_or_else(|| err("missing `L=<components>`".into()))?;
        if !n.is_power_of_two() || n < 8 {
            return Err(err(format!("ring degree {n} must be a power of two ≥ 8")));
        }
        if components == 0 {
            return Err(err("component count must be positive".into()));
        }
        if dnum > components {
            return Err(err(format!("dnum {dnum} exceeds components {components}")));
        }
        trace.push(op, OpParams::with_dnum(n, components, special, dnum), count);
    }
    Ok(trace)
}

/// Formats a trace back into program text (inverse of [`parse`] up to
/// whitespace and comments). Parameters are re-emitted whenever they
/// change between entries.
pub fn format(trace: &OpTrace) -> String {
    let mut out = String::new();
    let mut last: Option<(usize, usize, usize)> = None;
    for (op, p, count) in trace.entries() {
        let key = (p.n, p.special, p.dnum);
        if last != Some(key) {
            out.push_str(&std::format!(
                "n={} special={} dnum={}\n",
                p.n,
                p.special,
                p.dnum
            ));
            last = Some(key);
        }
        out.push_str(op_to_name(*op));
        out.push_str(&std::format!(" L={}", p.components));
        if *count != 1 {
            out.push_str(&std::format!(" x{count}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_program() {
        let text = "\
# demo
n=4096 special=1
hadd L=4 x3
cmult L=4
rescale L=3
";
        let t = parse(text).unwrap();
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.entries()[0].2, 3);
        assert_eq!(t.entries()[2].1.components, 3);
    }

    #[test]
    fn round_trips_through_format() {
        let text = "n=4096 special=2 dnum=2\nrotation L=10 x5\npmult L=9\n";
        let t = parse(text).unwrap();
        let t2 = parse(&format(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn benchmark_traces_round_trip() {
        for b in crate::workloads::Benchmark::ALL {
            let t = b.trace();
            let back = parse(&format(&t)).unwrap();
            assert_eq!(t, back, "{}", b.name());
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("n=4096\nfrobnicate L=3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse("hadd L=3\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("ring degree"));

        let e = parse("n=100\nhadd L=3\n").unwrap_err();
        assert!(e.message.contains("power of two"));

        let e = parse("n=4096 dnum=5\nhadd L=3\n").unwrap_err();
        assert!(e.message.contains("dnum"));
    }

    #[test]
    fn errors_carry_the_offending_token() {
        // Unknown operation: the token is the op name, and Display shows
        // both the 1-based line and the token.
        let e = parse("n=4096\nfrobnicate L=3\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("frobnicate"));
        assert_eq!(
            e.to_string(),
            "line 2: unknown operation `frobnicate` (offending token `frobnicate`)"
        );

        // Unparsable numbers pin the full token they sit in.
        let e = parse("n=potato\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("n=potato"));
        assert!(e.to_string().starts_with("line 1:"));

        let e = parse("n=4096\nhadd L=abc\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("L=abc"));

        let e = parse("n=4096\nhadd L=3 xfoo\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("xfoo"));

        let e = parse("n=4096\nhadd L=3 wat\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("wat"));
        assert_eq!(
            e.to_string(),
            "line 2: unexpected token `wat` (offending token `wat`)"
        );

        let e = parse("n=4096 frob=1\nhadd L=3\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("frob=1"));

        // Structural errors have no single offending token.
        let e = parse("hadd L=3\n").unwrap_err();
        assert_eq!(e.token, None);
        assert_eq!(
            e.to_string(),
            "line 1: ring degree not set (need an `n=` directive)"
        );
        let e = parse("n=4096 dnum=5\nhadd L=3\n").unwrap_err();
        assert_eq!(e.token, None);
    }

    #[test]
    fn parsed_programs_simulate() {
        let text = "n=65536 special=2\ncmult L=44 x10\nrotation L=44 x4\n";
        let t = parse(text).unwrap();
        let r = crate::Simulator::new(crate::AcceleratorConfig::poseidon_u280()).run(&t);
        assert!(r.seconds > 0.0);
    }
}
