//! Boundary conditions of the accelerator model: minimum ring degrees,
//! single-component chains, single-lane machines, and degenerate traces.

use poseidon_core::decompose::{BasicOp, OpParams, OpTrace};
use poseidon_sim::{AcceleratorConfig, AutoMode, Simulator};

#[test]
fn minimum_ring_degree_and_single_component() {
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let p = OpParams::new(8, 1, 1);
    for op in BasicOp::ALL {
        let t = sim.time_single(op, &p);
        assert!(t.seconds > 0.0, "{} must take time", op.name());
        assert!(t.hbm_bytes > 0, "{} must move data", op.name());
        assert!(t.bandwidth_utilisation <= 1.0);
    }
}

#[test]
fn single_lane_machine_is_slowest_but_correct() {
    let p = OpParams::new(1 << 12, 4, 1);
    let t1 = Simulator::new(AcceleratorConfig {
        lanes: 1,
        ..AcceleratorConfig::poseidon_u280()
    })
    .time_single(BasicOp::CMult, &p);
    let t512 = Simulator::new(AcceleratorConfig::poseidon_u280()).time_single(BasicOp::CMult, &p);
    assert!(t1.seconds > t512.seconds);
    assert_eq!(t1.hbm_bytes, t512.hbm_bytes, "traffic is lane-independent");
}

#[test]
fn empty_trace_reports_zero() {
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let r = sim.run(&OpTrace::new());
    assert_eq!(r.seconds, 0.0);
    assert_eq!(r.hbm_bytes, 0);
    assert_eq!(r.bandwidth_utilisation, 0.0);
    assert!(r.time_by_op.is_empty());
}

#[test]
fn rescale_at_single_component_does_not_panic() {
    // L = 1 Rescale is a boundary the counts must saturate, not underflow.
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let p = OpParams::new(1 << 10, 1, 1);
    let t = sim.time_single(BasicOp::Rescale, &p);
    assert!(t.seconds > 0.0);
}

#[test]
fn naive_auto_only_affects_auto_bearing_ops() {
    let p = OpParams::new(1 << 14, 10, 2);
    let hf = Simulator::new(AcceleratorConfig::poseidon_u280());
    let naive = Simulator::new(AcceleratorConfig {
        auto_mode: AutoMode::Naive,
        ..AcceleratorConfig::poseidon_u280()
    });
    // CMult has no automorphism: identical under both modes.
    let a = hf.time_single(BasicOp::CMult, &p);
    let b = naive.time_single(BasicOp::CMult, &p);
    assert_eq!(a.compute_cycles, b.compute_cycles);
    // Rotation differs.
    let a = hf.time_single(BasicOp::Rotation, &p);
    let b = naive.time_single(BasicOp::Rotation, &p);
    assert!(b.compute_cycles > a.compute_cycles);
}

#[test]
fn ops_per_second_is_reciprocal_of_single_time() {
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let p = OpParams::new(1 << 13, 6, 1);
    let t = sim.time_single(BasicOp::PMult, &p).seconds;
    let ops = sim.ops_per_second(BasicOp::PMult, &p);
    assert!((ops * t - 1.0).abs() < 1e-9);
}

#[test]
#[should_panic(expected = "invalid accelerator configuration")]
fn simulator_rejects_invalid_config() {
    let _ = Simulator::new(AcceleratorConfig {
        lanes: 0,
        ..AcceleratorConfig::poseidon_u280()
    });
}
