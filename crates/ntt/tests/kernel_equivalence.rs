//! Cross-kernel equivalence for the production NTT kernels.
//!
//! Every [`KernelKind`] must be *bit-identical* — not merely congruent —
//! to the scalar oracle at every transform length: lazy reduction changes
//! how values are carried between stages, never what leaves the kernel.
//! The suite sweeps log N ∈ {2..13} over random residue vectors
//! (round-trips, cross-kernel agreement, pointwise products through the
//! scratch-pool `multiply`) and writes a deterministic digest to
//! `$POSEIDON_DIGEST_FILE` so CI can diff builds running under different
//! `POSEIDON_NTT_KERNEL` settings.
//!
//! The debug-build counter tests reconcile the fused kernel with the
//! analytic [`FusionAnalysis`] model of paper Table II: per 2^k block a
//! fused stage group performs exactly 2^k modular reductions (not k·2^k),
//! while the twiddle multiply count stays at the unfused k·2^k tally.

use he_ntt::kernel::op_counters;
use he_ntt::{FusionAnalysis, KernelKind, NttTable};
use proptest::prelude::*;

const LOG_N_RANGE: std::ops::RangeInclusive<u32> = 2..=13;

fn prime_for(n: usize, bits: u32) -> u64 {
    he_math::prime::ntt_prime(bits, 2 * n as u64).unwrap()
}

fn random_vector(n: usize, q: u64, seed: u64) -> Vec<u64> {
    // Deterministic splitmix-style fill, independent of the RNG shim.
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s % q
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_kernel_round_trips(log_n in LOG_N_RANGE, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let input = random_vector(n, q, seed);
        for kind in KernelKind::ALL {
            let t = NttTable::with_kernel(n, q, kind);
            prop_assert_eq!(t.kernel(), kind);
            let mut a = input.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            prop_assert_eq!(&a, &input, "round trip failed for {} at n={}", kind, n);
        }
    }

    #[test]
    fn forward_outputs_are_bit_identical(log_n in LOG_N_RANGE, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let input = random_vector(n, q, seed);
        let scalar = NttTable::with_kernel(n, q, KernelKind::Scalar);
        let mut want = input.clone();
        scalar.forward(&mut want);
        for kind in [KernelKind::Lazy, KernelKind::FusedRadix8] {
            let t = NttTable::with_kernel(n, q, kind);
            let mut got = input.clone();
            t.forward(&mut got);
            prop_assert_eq!(&got, &want, "forward diverged for {} at n={}", kind, n);
        }
    }

    #[test]
    fn inverse_outputs_are_bit_identical(log_n in LOG_N_RANGE, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let input = random_vector(n, q, seed);
        let scalar = NttTable::with_kernel(n, q, KernelKind::Scalar);
        let mut want = input.clone();
        scalar.inverse(&mut want);
        for kind in [KernelKind::Lazy, KernelKind::FusedRadix8] {
            let t = NttTable::with_kernel(n, q, kind);
            let mut got = input.clone();
            t.inverse(&mut got);
            prop_assert_eq!(&got, &want, "inverse diverged for {} at n={}", kind, n);
        }
    }

    #[test]
    fn multiply_is_kernel_independent(log_n in 2u32..=9, s1 in any::<u64>(), s2 in any::<u64>()) {
        // `multiply` routes through the scratch pool and three transforms;
        // the product must not depend on the kernel either.
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let a = random_vector(n, q, s1);
        let b = random_vector(n, q, s2);
        let want = NttTable::with_kernel(n, q, KernelKind::Scalar).multiply(&a, &b);
        for kind in [KernelKind::Lazy, KernelKind::FusedRadix8] {
            let got = NttTable::with_kernel(n, q, kind).multiply(&a, &b);
            prop_assert_eq!(&got, &want, "multiply diverged for {} at n={}", kind, n);
        }
    }

    #[test]
    fn large_moduli_do_not_overflow(log_n in 2u32..=10, seed in any::<u64>()) {
        // 61-bit primes push the [0, 4q) redundant range right up against
        // u64; the lazy kernels must stay exact there too.
        let n = 1usize << log_n;
        let q = prime_for(n, 61);
        let input = random_vector(n, q, seed);
        let scalar = NttTable::with_kernel(n, q, KernelKind::Scalar);
        let mut want = input.clone();
        scalar.forward(&mut want);
        for kind in [KernelKind::Lazy, KernelKind::FusedRadix8] {
            let t = NttTable::with_kernel(n, q, kind);
            let mut got = input.clone();
            t.forward(&mut got);
            prop_assert_eq!(&got, &want, "forward diverged for {} at n={}", kind, n);
            t.inverse(&mut got);
            prop_assert_eq!(&got, &input, "round trip failed for {} at n={}", kind, n);
        }
    }
}

/// FNV-1a over a word stream.
fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digests a fixed transform sweep with tables built through
/// [`NttTable::new`] — i.e. under whatever kernel `POSEIDON_NTT_KERNEL`
/// (or the process default) selects. Because kernels are bit-identical,
/// the digest must be the same for every setting; CI runs this test once
/// per kernel and diffs the files.
#[test]
fn kernel_digest_is_kernel_independent() {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for log_n in LOG_N_RANGE {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let t = NttTable::new(n, q);
        let mut a = random_vector(n, q, 0x9e3779b97f4a7c15 ^ log_n as u64);
        t.forward(&mut a);
        for &v in &a {
            fnv1a(&mut h, v);
        }
        t.inverse(&mut a);
        for &v in &a {
            fnv1a(&mut h, v);
        }
    }
    // In-process cross-check: the digest of the default-kernel sweep must
    // equal the scalar oracle's digest.
    let mut h_scalar: u64 = 0xcbf2_9ce4_8422_2325;
    for log_n in LOG_N_RANGE {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let t = NttTable::with_kernel(n, q, KernelKind::Scalar);
        let mut a = random_vector(n, q, 0x9e3779b97f4a7c15 ^ log_n as u64);
        t.forward(&mut a);
        for &v in &a {
            fnv1a(&mut h_scalar, v);
        }
        t.inverse(&mut a);
        for &v in &a {
            fnv1a(&mut h_scalar, v);
        }
    }
    assert_eq!(h, h_scalar, "default kernel digest diverged from scalar");
    if let Ok(path) = std::env::var("POSEIDON_DIGEST_FILE") {
        std::fs::write(&path, format!("{h:016x}\n")).expect("write digest file");
    }
}

/// The instrumented fused kernel must land exactly on the analytic Table II
/// model: a full length-n transform at fusion degree k=3 performs
/// `FusionAnalysis::reductions_full_transform(n)` modular reductions —
/// 2^k per block per phase, *not* k·2^k.
///
/// Counters only exist in debug builds; the release hot path is untouched.
#[cfg(debug_assertions)]
#[test]
fn fused_reduction_count_matches_table2_model() {
    let a3 = FusionAnalysis::for_radix(3);
    for log_n in [3u32, 5, 6, 9, 12] {
        let n = 1usize << log_n;
        let q = prime_for(n, 30);
        let t = NttTable::with_kernel(n, q, KernelKind::FusedRadix8);
        let mut a = random_vector(n, q, 7 + log_n as u64);
        op_counters::reset();
        t.forward(&mut a);
        assert_eq!(
            op_counters::reductions(),
            a3.reductions_full_transform(n),
            "reductions at n={n}"
        );
        // The butterfly-fused kernel keeps the unfused multiply tally:
        // k·2^k per block per phase (each Shoup product = 2 hardware
        // multiplies, as Table II counts them) — i.e. n·log2(n) total.
        assert_eq!(
            op_counters::multiplies(),
            n as u64 * log_n as u64,
            "multiplies at n={n}"
        );
    }
}

/// Sanity for the per-block ratio itself: one radix-8 phase of a length-8
/// transform is one fused block — 8 reductions (2^k), 24 multiplies (k·2^k).
#[cfg(debug_assertions)]
#[test]
fn single_block_counts_match_table2_row() {
    let a3 = FusionAnalysis::for_radix(3);
    let n = 8usize;
    let q = prime_for(n, 30);
    let t = NttTable::with_kernel(n, q, KernelKind::FusedRadix8);
    let mut a = random_vector(n, q, 42);
    op_counters::reset();
    t.forward(&mut a);
    assert_eq!(op_counters::reductions(), a3.reductions_fused);
    assert_eq!(op_counters::multiplies(), a3.mult_unfused);
    assert_ne!(
        op_counters::reductions(),
        a3.reductions_unfused,
        "fusion must beat the k·2^k unfused reduction count"
    );
}
