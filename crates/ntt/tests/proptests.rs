//! Property-based tests for the NTT layer: transform identities, fused ≡
//! radix-2 equivalence, and convolution semantics over random inputs.

use he_ntt::{naive, FusedNtt, NttTable};
use proptest::prelude::*;

fn arb_poly(n: usize, q: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..q, n)
}

fn table(log_n: u32) -> NttTable {
    let n = 1usize << log_n;
    let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
    NttTable::new(n, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forward_inverse_identity(log_n in 3u32..8, seed in any::<u64>()) {
        let t = table(log_n);
        let n = t.n();
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i.wrapping_mul(seed | 1)) % q).collect();
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn transform_is_linear(log_n in 3u32..7, s1 in any::<u64>(), s2 in any::<u64>()) {
        let t = table(log_n);
        let n = t.n();
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(s1 | 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(s2 | 3) % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| he_math::modops::add_mod(x, y, q)).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fs = sum;
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..n {
            prop_assert_eq!(fs[i], he_math::modops::add_mod(fa[i], fb[i], q));
        }
    }

    #[test]
    fn multiply_matches_schoolbook(log_n in 3u32..6, s1 in any::<u64>(), s2 in any::<u64>()) {
        let t = table(log_n);
        let n = t.n();
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(s1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(s2) % q).collect();
        prop_assert_eq!(t.multiply(&a, &b), naive::negacyclic_mul_schoolbook(&a, &b, q));
    }

    #[test]
    fn fused_equals_radix2_for_all_radices(log_n in 4u32..8, k in 1u32..6, seed in any::<u64>()) {
        let k = k.min(log_n);
        let t = table(log_n);
        let n = t.n();
        let q = t.modulus();
        let fused = FusedNtt::new(&t, k);
        let a: Vec<u64> = (0..n as u64).map(|i| (i ^ seed).wrapping_mul(2654435761) % q).collect();
        let mut r2 = a.clone();
        let mut rf = a;
        t.forward(&mut r2);
        fused.forward(&mut rf);
        prop_assert_eq!(r2, rf);
    }

    #[test]
    fn random_polys_via_proptest_vectors(log_n in 3u32..6, data in arb_poly(8, 1 << 20)) {
        // Exercise arbitrary residue vectors padded into the ring.
        let t = table(log_n);
        let n = t.n();
        let q = t.modulus();
        let mut a = vec![0u64; n];
        for (i, v) in data.iter().enumerate() {
            a[i % n] = v % q;
        }
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        prop_assert_eq!(a, orig);
    }
}
