//! Precomputed twiddle tables for the negacyclic NTT.

use he_math::modops::{inv_mod_prime, pow_mod};
use he_math::prime::root_of_unity;
use he_math::{BarrettReducer, ShoupMul};

/// Telemetry scopes for the transform hot paths. Resolved once into
/// statics; with the `telemetry` feature off, the module and every call
/// site compile away.
#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    pub fn forward() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("ntt.forward"))
    }

    pub fn inverse() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("ntt.inverse"))
    }
}

/// Precomputed transform tables for one `(N, q)` pair.
///
/// Holds the powers of the 2N-th primitive root ψ (and its inverse) in
/// bit-reversed order together with their Shoup constants, plus `N⁻¹ mod q`
/// for the inverse transform.
///
/// # Examples
///
/// ```
/// use he_ntt::NttTable;
/// let q = he_math::prime::ntt_prime(30, 1 << 9).unwrap();
/// let t = NttTable::new(256, q);
/// let mut a: Vec<u64> = (0..256u64).collect();
/// let orig = a.clone();
/// t.forward(&mut a);
/// t.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    q: u64,
    log_n: u32,
    /// ψ^brv(i) with Shoup constants, for the forward CT transform.
    psi_rev: Vec<ShoupMul>,
    /// ψ^{-brv(i)} with Shoup constants, for the inverse GS transform.
    inv_psi_rev: Vec<ShoupMul>,
    /// N⁻¹ mod q.
    n_inv: ShoupMul,
    /// Shared Barrett reducer (the crate-level stand-in for the SBT core).
    reducer: BarrettReducer,
}

impl NttTable {
    /// Builds tables for ring degree `n` (a power of two ≥ 2) and NTT prime
    /// `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not an NTT prime for
    /// this degree.
    pub fn new(n: usize, q: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two ≥ 2"
        );
        assert!(
            (q - 1).is_multiple_of(2 * n as u64),
            "q must satisfy q ≡ 1 (mod 2n)"
        );
        let log_n = n.trailing_zeros();
        let psi = root_of_unity(2 * n as u64, q);
        let psi_inv = inv_mod_prime(psi, q).expect("psi is a unit");
        let mut psi_rev = Vec::with_capacity(n);
        let mut inv_psi_rev = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let r = bit_reverse(i, log_n);
            psi_rev.push(ShoupMul::new(pow_mod(psi, r, q), q));
            inv_psi_rev.push(ShoupMul::new(pow_mod(psi_inv, r, q), q));
        }
        let n_inv = ShoupMul::new(inv_mod_prime(n as u64, q).expect("n is a unit"), q);
        Self {
            n,
            q,
            log_n,
            psi_rev,
            inv_psi_rev,
            n_inv,
            reducer: BarrettReducer::new(q),
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// `log2(N)`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The shared Barrett reducer for this modulus.
    #[inline]
    pub fn reducer(&self) -> &BarrettReducer {
        &self.reducer
    }

    /// Raw ψ^brv(i) value at table index `i` (used by the fused kernels).
    #[inline]
    pub(crate) fn psi_rev_value(&self, i: usize) -> u64 {
        self.psi_rev[i].operand()
    }

    /// Forward negacyclic NTT, in place (coefficient → evaluation order).
    ///
    /// Output is in bit-reversed evaluation order, matched by [`inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    ///
    /// [`inverse`]: Self::inverse
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal N");
        #[cfg(feature = "telemetry")]
        let _span = tel::forward().span(self.n as u64);
        crate::negacyclic::forward_in_place(a, &self.psi_rev, self.q);
    }

    /// Inverse negacyclic NTT, in place (evaluation → coefficient order).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal N");
        #[cfg(feature = "telemetry")]
        let _span = tel::inverse().span(self.n as u64);
        crate::negacyclic::inverse_in_place(a, &self.inv_psi_rev, &self.n_inv, self.q);
    }

    /// Negacyclic polynomial product `a · b mod (X^N + 1, q)` via three
    /// transforms (the CMult datapath of the paper's Fig. 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use he_ntt::NttTable;
    /// let q = he_math::prime::ntt_prime(30, 64).unwrap();
    /// let t = NttTable::new(32, q);
    /// let mut x = vec![0u64; 32];
    /// x[31] = 1; // X^31
    /// let y = x.clone();
    /// let p = t.multiply(&x, &y); // X^62 = -X^30
    /// assert_eq!(p[30], q - 1);
    /// ```
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.reducer.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Reverses the lowest `bits` bits of `v`.
#[inline]
pub fn bit_reverse(v: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        v.reverse_bits() >> (64 - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn forward_inverse_round_trip() {
        let q = he_math::prime::ntt_prime(30, 1 << 5).unwrap();
        let t = NttTable::new(16, q);
        let orig: Vec<u64> = (0..16u64).map(|i| (i * i * 37 + 11) % q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "transform must not be identity");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn constant_transforms_to_constant_vector() {
        let q = he_math::prime::ntt_prime(28, 1 << 4).unwrap();
        let t = NttTable::new(8, q);
        let mut a = vec![0u64; 8];
        a[0] = 5;
        t.forward(&mut a);
        assert!(
            a.iter().all(|&v| v == 5),
            "constant poly evaluates to itself"
        );
    }

    #[test]
    #[should_panic(expected = "q must satisfy")]
    fn rejects_bad_modulus() {
        let _ = NttTable::new(16, 101); // 101 ≢ 1 mod 32
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(N/2) · X^(N/2) = X^N = -1 in the ring.
        let q = he_math::prime::ntt_prime(30, 1 << 7).unwrap();
        let t = NttTable::new(64, q);
        let mut x = vec![0u64; 64];
        x[32] = 1;
        let p = t.multiply(&x, &x);
        assert_eq!(p[0], q - 1);
        assert!(p[1..].iter().all(|&v| v == 0));
    }
}
