//! Precomputed twiddle tables for the negacyclic NTT.

use crate::kernel::KernelKind;
use he_math::modops::{inv_mod_prime, pow_mod};
use he_math::prime::root_of_unity;
use he_math::{BarrettReducer, ShoupMul};

/// Telemetry scopes for the transform hot paths. Resolved once into
/// statics; with the `telemetry` feature off, the module and every call
/// site compile away.
#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    pub fn forward() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("ntt.forward"))
    }

    pub fn inverse() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("ntt.inverse"))
    }
}

/// Precomputed transform tables for one `(N, q)` pair.
///
/// Holds the powers of the 2N-th primitive root ψ (and its inverse) in
/// bit-reversed order together with their Shoup constants, plus `N⁻¹ mod q`
/// for the inverse transform.
///
/// # Examples
///
/// ```
/// use he_ntt::NttTable;
/// let q = he_math::prime::ntt_prime(30, 1 << 9).unwrap();
/// let t = NttTable::new(256, q);
/// let mut a: Vec<u64> = (0..256u64).collect();
/// let orig = a.clone();
/// t.forward(&mut a);
/// t.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    q: u64,
    log_n: u32,
    /// ψ^brv(i) with Shoup constants, for the forward CT transform.
    psi_rev: Vec<ShoupMul>,
    /// ψ^{-brv(i)} with Shoup constants, for the inverse GS transform.
    inv_psi_rev: Vec<ShoupMul>,
    /// N⁻¹ mod q.
    n_inv: ShoupMul,
    /// Shared Barrett reducer (the crate-level stand-in for the SBT core).
    reducer: BarrettReducer,
    /// Which butterfly kernel [`forward`](Self::forward) and
    /// [`inverse`](Self::inverse) dispatch to.
    kernel: KernelKind,
}

impl NttTable {
    /// Builds tables for ring degree `n` (a power of two ≥ 2) and NTT prime
    /// `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not an NTT prime for
    /// this degree.
    pub fn new(n: usize, q: u64) -> Self {
        Self::with_kernel(n, q, KernelKind::default_kind())
    }

    /// Builds tables like [`new`](Self::new) with an explicit butterfly
    /// kernel instead of the process default.
    pub fn with_kernel(n: usize, q: u64, kernel: KernelKind) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two ≥ 2"
        );
        assert!(
            (q - 1).is_multiple_of(2 * n as u64),
            "q must satisfy q ≡ 1 (mod 2n)"
        );
        let log_n = n.trailing_zeros();
        let psi = root_of_unity(2 * n as u64, q);
        let psi_inv = inv_mod_prime(psi, q).expect("psi is a unit");
        let mut psi_rev = Vec::with_capacity(n);
        let mut inv_psi_rev = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let r = bit_reverse(i, log_n);
            psi_rev.push(ShoupMul::new(pow_mod(psi, r, q), q));
            inv_psi_rev.push(ShoupMul::new(pow_mod(psi_inv, r, q), q));
        }
        let n_inv = ShoupMul::new(inv_mod_prime(n as u64, q).expect("n is a unit"), q);
        Self {
            n,
            q,
            log_n,
            psi_rev,
            inv_psi_rev,
            n_inv,
            reducer: BarrettReducer::new(q),
            kernel,
        }
    }

    /// The butterfly kernel this table dispatches to.
    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Switches the butterfly kernel. All kernels are bit-identical, so
    /// this never changes transform outputs — only how they are computed.
    #[inline]
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// `log2(N)`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The shared Barrett reducer for this modulus.
    #[inline]
    pub fn reducer(&self) -> &BarrettReducer {
        &self.reducer
    }

    /// Raw ψ^brv(i) value at table index `i` (used by the fused kernels).
    #[inline]
    pub(crate) fn psi_rev_value(&self, i: usize) -> u64 {
        self.psi_rev[i].operand()
    }

    /// Forward negacyclic NTT, in place (coefficient → evaluation order).
    ///
    /// Output is in bit-reversed evaluation order, matched by [`inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    ///
    /// [`inverse`]: Self::inverse
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal N");
        #[cfg(feature = "telemetry")]
        let _span = tel::forward().span(self.n as u64);
        // Injection point for the `NttTwiddle` fault site: a corrupted
        // twiddle BRAM word is modeled as corruption of the working vector
        // entering the butterfly network.
        #[cfg(feature = "faults")]
        poseidon_faults::tamper(poseidon_faults::FaultSite::NttTwiddle, a);
        match self.kernel {
            KernelKind::Scalar => crate::negacyclic::forward_in_place(a, &self.psi_rev, self.q),
            KernelKind::Lazy => crate::kernel::forward_lazy(a, &self.psi_rev, self.q),
            KernelKind::FusedRadix8 => crate::kernel::forward_fused(a, &self.psi_rev, self.q),
        }
    }

    /// Inverse negacyclic NTT, in place (evaluation → coefficient order).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal N");
        #[cfg(feature = "telemetry")]
        let _span = tel::inverse().span(self.n as u64);
        #[cfg(feature = "faults")]
        poseidon_faults::tamper(poseidon_faults::FaultSite::NttTwiddle, a);
        match self.kernel {
            KernelKind::Scalar => {
                crate::negacyclic::inverse_in_place(a, &self.inv_psi_rev, &self.n_inv, self.q)
            }
            KernelKind::Lazy => {
                crate::kernel::inverse_lazy(a, &self.inv_psi_rev, &self.n_inv, self.q)
            }
            KernelKind::FusedRadix8 => {
                crate::kernel::inverse_fused(a, &self.inv_psi_rev, &self.n_inv, self.q)
            }
        }
    }

    /// Negacyclic polynomial product `a · b mod (X^N + 1, q)` via three
    /// transforms (the CMult datapath of the paper's Fig. 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use he_ntt::NttTable;
    /// let q = he_math::prime::ntt_prime(30, 64).unwrap();
    /// let t = NttTable::new(32, q);
    /// let mut x = vec![0u64; 32];
    /// x[31] = 1; // X^31
    /// let y = x.clone();
    /// let p = t.multiply(&x, &y); // X^62 = -X^30
    /// assert_eq!(p[30], q - 1);
    /// ```
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        // Both temporaries come from the per-thread scratch pool: once a
        // thread is warm, `multiply` performs no heap allocation beyond the
        // returned product itself.
        let mut fa = poseidon_par::scratch::take(a.len());
        fa.copy_from_slice(a);
        let mut fb = poseidon_par::scratch::take(b.len());
        fb.copy_from_slice(b);
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&*fb) {
            *x = self.reducer.mul(*x, *y);
        }
        poseidon_par::scratch::recycle(fb);
        self.inverse(&mut fa);
        fa
    }
}

/// Reverses the lowest `bits` bits of `v`.
#[inline]
pub fn bit_reverse(v: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        v.reverse_bits() >> (64 - bits)
    }
}

/// The slot permutation realising the Galois automorphism `X ↦ X^g` in the
/// evaluation domain: `out[j] = in[perm[j]]` satisfies
/// `NTT(a(X^g)) = perm(NTT(a))` for every polynomial `a`.
///
/// [`NttTable::forward`] leaves slot `j` holding the evaluation of `a` at
/// `ψ^(2·brv(j)+1)` (see [`crate::naive::negacyclic_ntt`]). Composing with
/// the automorphism, slot `j` of `a(X^g)` holds `a(ψ^((2·brv(j)+1)·g))` —
/// which is slot `k` of `NTT(a)` where `2·brv(k)+1 ≡ (2·brv(j)+1)·g
/// (mod 2N)`. The exponent law depends only on the slot index and `N`,
/// never on the prime, so one permutation serves every RNS limb, and no
/// negacyclic sign correction is needed (the eval-domain automorphism is a
/// pure permutation). This is what makes Halevi–Shoup hoisting cheap:
/// digits decomposed and forward-transformed once can be rotated by any
/// `g` without touching the NTT core again.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `g` is even (even elements are
/// not units mod 2N and do not define ring automorphisms).
///
/// # Examples
///
/// ```
/// use he_ntt::NttTable;
/// use he_ntt::table::galois_permutation;
/// let n = 16;
/// let q = he_math::prime::ntt_prime(20, 2 * n as u64).unwrap();
/// let t = NttTable::new(n, q);
/// let mut a: Vec<u64> = (0..n as u64).collect();
/// // Coefficient-domain automorphism X ↦ X^3 of `a`…
/// let mut auto = vec![0u64; n];
/// for (i, &v) in a.iter().enumerate() {
///     let e = (i * 3) % (2 * n);
///     if e < n { auto[e] = v } else { auto[e - n] = (q - v) % q }
/// }
/// t.forward(&mut auto);
/// // …equals the permuted spectrum of `a`.
/// t.forward(&mut a);
/// let perm = galois_permutation(n, 3);
/// let permuted: Vec<u64> = perm.iter().map(|&k| a[k]).collect();
/// assert_eq!(auto, permuted);
/// ```
pub fn galois_permutation(n: usize, g: u64) -> Vec<usize> {
    assert!(n.is_power_of_two(), "n must be a power of two");
    assert_eq!(g % 2, 1, "Galois element must be odd");
    let log_n = n.trailing_zeros();
    let two_n = 2 * n as u64;
    let g = g % two_n;
    (0..n as u64)
        .map(|j| {
            // Exponent evaluated at slot j, composed with the automorphism.
            let e = ((2 * bit_reverse(j, log_n) + 1) * g) % two_n;
            // Odd · odd stays odd mod 2N, so (e − 1)/2 is exact.
            bit_reverse((e - 1) / 2, log_n) as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn forward_inverse_round_trip() {
        let q = he_math::prime::ntt_prime(30, 1 << 5).unwrap();
        let t = NttTable::new(16, q);
        let orig: Vec<u64> = (0..16u64).map(|i| (i * i * 37 + 11) % q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "transform must not be identity");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn constant_transforms_to_constant_vector() {
        let q = he_math::prime::ntt_prime(28, 1 << 4).unwrap();
        let t = NttTable::new(8, q);
        let mut a = vec![0u64; 8];
        a[0] = 5;
        t.forward(&mut a);
        assert!(
            a.iter().all(|&v| v == 5),
            "constant poly evaluates to itself"
        );
    }

    #[test]
    #[should_panic(expected = "q must satisfy")]
    fn rejects_bad_modulus() {
        let _ = NttTable::new(16, 101); // 101 ≢ 1 mod 32
    }

    #[test]
    fn galois_permutation_matches_coefficient_automorphism() {
        let n = 32usize;
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        let t = NttTable::new(n, q);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i * 7 + 3) % q).collect();
        // Conjugation 2N−1 alongside rotation-style elements.
        for g in [3u64, 5, 25, 2 * n as u64 - 1] {
            // Coefficient-domain: X ↦ X^g with the negacyclic sign.
            let mut auto = vec![0u64; n];
            for (i, &v) in a.iter().enumerate() {
                let e = (i as u64 * g) % (2 * n as u64);
                if (e as usize) < n {
                    auto[e as usize] = v;
                } else {
                    auto[e as usize - n] = (q - v) % q;
                }
            }
            t.forward(&mut auto);
            let mut spec = a.clone();
            t.forward(&mut spec);
            let perm = galois_permutation(n, g);
            let permuted: Vec<u64> = perm.iter().map(|&k| spec[k]).collect();
            assert_eq!(auto, permuted, "g = {g}");
        }
    }

    #[test]
    fn galois_permutation_agrees_with_naive_oracle() {
        // Independently of the fast transform: apply the automorphism in
        // coefficients and evaluate with the O(N²) DFT definition.
        let n = 16usize;
        let q = he_math::prime::ntt_prime(20, 2 * n as u64).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 11 + 1) % q).collect();
        let g = 9u64;
        let mut auto = vec![0u64; n];
        for (i, &v) in a.iter().enumerate() {
            let e = (i as u64 * g) % (2 * n as u64);
            if (e as usize) < n {
                auto[e as usize] = v;
            } else {
                auto[e as usize - n] = (q - v) % q;
            }
        }
        let want = crate::naive::negacyclic_ntt(&auto, q);
        let spec = crate::naive::negacyclic_ntt(&a, q);
        let perm = galois_permutation(n, g);
        let got: Vec<u64> = perm.iter().map(|&k| spec[k]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn galois_permutation_identity_and_inverse() {
        let n = 16usize;
        assert_eq!(galois_permutation(n, 1), (0..n).collect::<Vec<_>>());
        // g·g⁻¹ ≡ 1 (mod 2N) composes to the identity permutation.
        let g = 5u64;
        let g_inv = he_math::modops::inv_mod(g, 2 * n as u64).unwrap();
        let p = galois_permutation(n, g);
        let p_inv = galois_permutation(n, g_inv);
        for j in 0..n {
            assert_eq!(p_inv[p[j]], j);
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(N/2) · X^(N/2) = X^N = -1 in the ring.
        let q = he_math::prime::ntt_prime(30, 1 << 7).unwrap();
        let t = NttTable::new(64, q);
        let mut x = vec![0u64; 64];
        x[32] = 1;
        let p = t.multiply(&x, &x);
        assert_eq!(p[0], q - 1);
        assert!(p[1..].iter().all(|&v| v == 0));
    }
}
