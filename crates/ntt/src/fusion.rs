//! NTT-fusion: the radix-2^k fused transform of the paper's §III-A.
//!
//! The conventional NTT performs log2(N) phases of "Twiddle, Accumulate,
//! Modulo" (TAM) butterflies — every element passes through one modular
//! reduction per phase. Fusing k consecutive phases collapses them into a
//! single *fused TAM*: each 2^k-element block is transformed by one
//! precomputed 2^k × 2^k coefficient matrix, accumulated in 128-bit
//! registers, with a **single** Barrett reduction per output element.
//!
//! The trade-off the paper quantifies in Table II falls out of this
//! structure directly:
//!
//! * modular reductions per block drop from `k·2^k` to `2^k`;
//! * multiplies/adds per block rise from `k·2^k` to `(2^k − 1)·2^k`
//!   (a dense matrix apply);
//! * the number of distinct twiddle factors to store grows, because the
//!   matrix entries are *products* of stage twiddles.
//!
//! [`FusedNtt`] computes outputs bit-exactly equal to the radix-2 transform
//! (property-tested), while [`FusionAnalysis`] reports the operation counts
//! used by the Table II / Fig. 10 regenerators.

use he_math::BarrettReducer;
use std::collections::HashSet;

use crate::table::NttTable;

/// A fused radix-2^k forward NTT bound to an [`NttTable`].
///
/// # Examples
///
/// ```
/// use he_ntt::{FusedNtt, NttTable};
/// let q = he_math::prime::ntt_prime(30, 1 << 7).unwrap();
/// let table = NttTable::new(64, q);
/// let fused = FusedNtt::new(&table, 3);
/// let mut a: Vec<u64> = (0..64u64).collect();
/// let mut b = a.clone();
/// table.forward(&mut a);
/// fused.forward(&mut b);
/// assert_eq!(a, b); // bit-exact with the radix-2 transform
/// ```
#[derive(Debug, Clone)]
pub struct FusedNtt {
    n: usize,
    radix_log: u32,
    /// One group of fused stages; applied in order.
    groups: Vec<StageGroup>,
    reducer: BarrettReducer,
    /// Mean distinct twiddle-matrix coefficients (∉ {0, 1}) per kernel —
    /// the per-block twiddle storage that Table II's `W (fused)` tracks.
    distinct_twiddles_per_block: f64,
}

/// One fused stage group: `k_eff` radix-2 stages starting at `m0` groups.
#[derive(Debug, Clone)]
struct StageGroup {
    /// Group count entering this stage group.
    m0: usize,
    /// Number of radix-2 stages fused here (may be < k for the remainder).
    k_eff: u32,
    /// `t_first / 2^(k_eff-1)`: element stride inside a block.
    t_min: usize,
    /// Per first-stage-group kernel matrix, row-major `2^k_eff × 2^k_eff`.
    kernels: Vec<Vec<u64>>,
}

impl FusedNtt {
    /// Builds the fused transform for fusion degree `k` (radix `2^k`).
    ///
    /// When `log2(N)` is not a multiple of `k`, the final stage group fuses
    /// the remaining `log2(N) mod k` stages at a smaller radix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > log2(N)`.
    pub fn new(table: &NttTable, k: u32) -> Self {
        let n = table.n();
        let q = table.modulus();
        let log_n = table.log_n();
        assert!(k >= 1 && k <= log_n, "fusion degree out of range");

        let mut groups = Vec::new();
        let mut kernel_count = 0usize;
        let mut distinct_total = 0usize;
        let mut m0 = 1usize;
        let mut stages_done = 0u32;
        while stages_done < log_n {
            let k_eff = k.min(log_n - stages_done);
            let block = 1usize << k_eff;
            let t_first = n / (2 * m0);
            let t_min = t_first >> (k_eff - 1);
            // Build the kernel matrix for each first-stage group i0 by
            // symbolically executing the k_eff radix-2 stages on basis
            // vectors over Z_q.
            let mut kernels = Vec::with_capacity(m0);
            for i0 in 0..m0 {
                let mut mat = vec![0u64; block * block];
                for e0 in 0..block {
                    let mut v = vec![0u64; block];
                    v[e0] = 1;
                    // Stage s pairs elements (e, e + 2^(k_eff-1-s)).
                    for s in 0..k_eff {
                        let d = 1usize << (k_eff - 1 - s);
                        let m_s = m0 << s;
                        let mut e = 0;
                        while e < block {
                            if e & d == 0 {
                                // Global group index at stage s.
                                let i_s = i0 * (1usize << s) + (e >> (k_eff - s));
                                let w = table.psi_rev_value(m_s + i_s);
                                let u = v[e];
                                let t = table.reducer().mul(w, v[e + d]);
                                v[e] = he_math::modops::add_mod(u, t, q);
                                v[e + d] = he_math::modops::sub_mod(u, t, q);
                                e += 1;
                            } else {
                                e += d; // skip the upper half of the pair span
                            }
                        }
                    }
                    for (e, &val) in v.iter().enumerate() {
                        mat[e * block + e0] = val;
                    }
                }
                let per_kernel: HashSet<u64> = mat.iter().copied().filter(|&v| v > 1).collect();
                distinct_total += per_kernel.len();
                kernel_count += 1;
                kernels.push(mat);
            }
            groups.push(StageGroup {
                m0,
                k_eff,
                t_min,
                kernels,
            });
            m0 <<= k_eff;
            stages_done += k_eff;
        }

        Self {
            n,
            radix_log: k,
            groups,
            reducer: BarrettReducer::new(q),
            distinct_twiddles_per_block: distinct_total as f64 / kernel_count as f64,
        }
    }

    /// Fusion degree `k`.
    #[inline]
    pub fn radix_log(&self) -> u32 {
        self.radix_log
    }

    /// Number of fused phases (stage groups) — `ceil(log2(N)/k)`, paper
    /// Table III's "iterations".
    #[inline]
    pub fn phases(&self) -> usize {
        self.groups.len()
    }

    /// Mean distinct non-trivial twiddle coefficients per fused kernel —
    /// the per-block storage cost Table II's `W (fused)` column tracks.
    #[inline]
    pub fn distinct_twiddles_per_block(&self) -> f64 {
        self.distinct_twiddles_per_block
    }

    /// Applies the fused forward transform in place; output is bit-exact
    /// with [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal N");
        let mut gathered = Vec::new();
        for g in &self.groups {
            let block = 1usize << g.k_eff;
            let span = 2 * (self.n / (2 * g.m0)); // group width = n / m0
            for i0 in 0..g.m0 {
                let base = i0 * span;
                let mat = &g.kernels[i0];
                for b in 0..g.t_min {
                    gathered.clear();
                    gathered.extend((0..block).map(|e| a[base + b + e * g.t_min]));
                    for e in 0..block {
                        let row = &mat[e * block..(e + 1) * block];
                        let mut acc: u128 = 0;
                        for (c, &x) in row.iter().zip(&gathered) {
                            acc += *c as u128 * x as u128;
                        }
                        // The single modular reduction of the fused TAM.
                        a[base + b + e * g.t_min] = self.reducer.reduce(acc);
                    }
                }
            }
        }
    }
}

/// Analytical operation counts for one fused TAM kernel, matching the
/// structure of paper Table II.
///
/// All counts are per 2^k-input block (k radix-2 stages fused).
///
/// # Examples
///
/// ```
/// use he_ntt::FusionAnalysis;
/// let a = FusionAnalysis::for_radix(3);
/// assert_eq!(a.reductions_unfused, 24);
/// assert_eq!(a.reductions_fused, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionAnalysis {
    /// Fusion degree `k`.
    pub k: u32,
    /// Twiddle factors stored per block, unfused (`2^(k-1)`).
    pub twiddles_unfused: u64,
    /// Twiddle factors reported by the paper for the fused kernel.
    pub twiddles_fused_paper: u64,
    /// Multiplications per block, unfused (`k·2^k`, per-element count as the
    /// paper tallies them).
    pub mult_unfused: u64,
    /// Multiplications per block, fused (`(2^k − 1)·2^k`, dense matrix).
    pub mult_fused: u64,
    /// Additions per block, unfused (equal to `mult_unfused`).
    pub add_unfused: u64,
    /// Additions per block, fused (equal to `mult_fused`).
    pub add_fused: u64,
    /// Modular reductions per block, unfused (`k·2^k`).
    pub reductions_unfused: u64,
    /// Modular reductions per block, fused (`2^k`).
    pub reductions_fused: u64,
}

impl FusionAnalysis {
    /// Operation counts for fusion degree `k` (2 ≤ k ≤ 6 covers Table II;
    /// other positive values extrapolate the same formulas).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn for_radix(k: u32) -> Self {
        assert!(k >= 1, "fusion degree must be positive");
        let block = 1u64 << k;
        let twiddles_fused_paper = match k {
            1 => 1,
            2 => 2,
            3 => 5,
            4 => 13,
            5 => 34,
            6 => 85,
            _ => (block * block - block) / 3 + 1, // extrapolation
        };
        Self {
            k,
            twiddles_unfused: block / 2,
            twiddles_fused_paper,
            mult_unfused: k as u64 * block,
            mult_fused: (block - 1) * block,
            add_unfused: k as u64 * block,
            add_fused: (block - 1) * block,
            reductions_unfused: k as u64 * block,
            reductions_fused: block,
        }
    }

    /// Total modular reductions for a full length-`n` transform at this
    /// fusion degree (blocks per phase × phases × per-block reductions).
    pub fn reductions_full_transform(&self, n: usize) -> u64 {
        let log_n = n.trailing_zeros();
        let phases = log_n.div_ceil(self.k);
        let blocks_per_phase = (n as u64) >> self.k.min(log_n);
        blocks_per_phase.max(1) * phases as u64 * self.reductions_fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NttTable;

    fn check_fused(n: usize, k: u32) {
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        let table = NttTable::new(n, q);
        let fused = FusedNtt::new(&table, k);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761 + 17) % q).collect();
        let mut r2 = a.clone();
        let mut rf = a;
        table.forward(&mut r2);
        fused.forward(&mut rf);
        assert_eq!(r2, rf, "n={n} k={k}");
    }

    #[test]
    fn fused_matches_radix2_when_k_divides_logn() {
        check_fused(64, 2);
        check_fused(64, 3);
        check_fused(256, 4);
    }

    #[test]
    fn fused_handles_remainder_stages() {
        check_fused(32, 3); // log2 = 5 → phases of 3 + 2
        check_fused(128, 4); // log2 = 7 → 4 + 3
        check_fused(128, 5); // 5 + 2
    }

    #[test]
    fn degenerate_radices() {
        check_fused(16, 1); // pure radix-2 through the fused path
        check_fused(16, 4); // the whole transform in one fused phase
    }

    #[test]
    fn phase_count_matches_ceiling() {
        let q = he_math::prime::ntt_prime(30, 1 << 13).unwrap();
        let table = NttTable::new(1 << 12, q);
        assert_eq!(FusedNtt::new(&table, 3).phases(), 4); // paper: 12/3 = 4
        assert_eq!(FusedNtt::new(&table, 5).phases(), 3); // 5+5+2
    }

    #[test]
    fn analysis_reproduces_table2_counts() {
        // Paper Table II rows (k, mult/add unfused, mult/add fused).
        let rows = [
            (2u32, 8u64, 12u64),
            (3, 24, 56),
            (4, 64, 240),
            (5, 160, 992),
        ];
        for (k, unfused, fused) in rows {
            let a = FusionAnalysis::for_radix(k);
            assert_eq!(a.mult_unfused, unfused);
            assert_eq!(a.mult_fused, fused);
            assert_eq!(a.add_unfused, unfused);
            assert_eq!(a.add_fused, fused);
        }
        // Reduction headline: k=3 turns 24 reductions into 8.
        let a3 = FusionAnalysis::for_radix(3);
        assert_eq!(a3.reductions_unfused, 24);
        assert_eq!(a3.reductions_fused, 8);
    }

    #[test]
    fn twiddle_storage_grows_with_k() {
        let q = he_math::prime::ntt_prime(30, 1 << 9).unwrap();
        let table = NttTable::new(256, q);
        let t2 = FusedNtt::new(&table, 2).distinct_twiddles_per_block();
        let t4 = FusedNtt::new(&table, 4).distinct_twiddles_per_block();
        assert!(
            t4 > t2,
            "fused twiddle storage must grow with k ({t2} vs {t4})"
        );
    }
}
