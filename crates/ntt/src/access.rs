//! BRAM data-access-pattern model for the NTT cores (paper §IV-B, Table III
//! and Fig. 5).
//!
//! Poseidon's NTT cores take `2^k` operands per cycle. The conventional
//! radix-2 NTT needs `log2(N)` iterations whose input index offset doubles
//! each phase; the fused NTT needs `ceil(log2(N)/k)` iterations whose offset
//! grows by `2^k` per phase. To feed a core all `2^k` operands in one cycle,
//! operands are interleaved *diagonally* across `2^k` single-port BRAMs —
//! this module computes both the offsets and the bank assignment so the
//! simulator can assert conflict-freedom.

/// Access-pattern summary for one NTT configuration.
///
/// # Examples
///
/// ```
/// use he_ntt::access::AccessPattern;
/// let p = AccessPattern::new(4096, 3);
/// assert_eq!(p.conventional_iterations(), 12);
/// assert_eq!(p.fused_iterations(), 4);
/// assert_eq!(p.fused_offset(2), 8);   // Fig. 5 iteration 2: 0,8,16,...
/// assert_eq!(p.fused_offset(3), 64);  // Fig. 5 iteration 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPattern {
    n: usize,
    k: u32,
}

impl AccessPattern {
    /// Creates the pattern model for transform length `n` and fusion degree
    /// `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `k` is zero or exceeds
    /// `log2(n)`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two");
        assert!(k >= 1 && k <= n.trailing_zeros(), "k out of range");
        Self { n, k }
    }

    /// Iterations (phases) of the conventional radix-2 NTT: `log2(N)`.
    pub fn conventional_iterations(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// Iterations of the fused NTT: `ceil(log2(N) / k)`.
    pub fn fused_iterations(&self) -> u32 {
        let l = self.n.trailing_zeros();
        l.div_ceil(self.k)
    }

    /// Index offset between consecutive operands in conventional iteration
    /// `iter` (1-based): `2^(iter-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0 or exceeds [`conventional_iterations`].
    ///
    /// [`conventional_iterations`]: Self::conventional_iterations
    pub fn conventional_offset(&self, iter: u32) -> usize {
        assert!(iter >= 1 && iter <= self.conventional_iterations());
        1usize << (iter - 1)
    }

    /// Index offset between consecutive operands in fused iteration `iter`
    /// (1-based): `2^(k·(iter-1))` — 1, 8, 64, 512, … for k = 3.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is 0 or exceeds [`fused_iterations`].
    ///
    /// [`fused_iterations`]: Self::fused_iterations
    pub fn fused_offset(&self, iter: u32) -> usize {
        assert!(iter >= 1 && iter <= self.fused_iterations());
        1usize << (self.k * (iter - 1)).min(self.n.trailing_zeros() - 1)
    }

    /// The `2^k` operand indices one NTT core consumes in fused iteration
    /// `iter`, for the block starting at `base`.
    pub fn fused_operands(&self, iter: u32, base: usize) -> Vec<usize> {
        let off = self.fused_offset(iter);
        (0..1usize << self.k).map(|e| base + e * off).collect()
    }

    /// The diagonal BRAM bank that stores operand index `idx` so that each
    /// fused gather touches `2^k` *distinct* banks (Fig. 5's diagonal
    /// layout): `bank = (idx + idx / 2^k) mod 2^k` folded over phases —
    /// we use the standard skewed scheme `(sum of base-2^k digits) mod 2^k`.
    pub fn bram_bank(&self, idx: usize) -> usize {
        let radix = 1usize << self.k;
        let mut v = idx;
        let mut acc = 0usize;
        while v > 0 {
            acc += v % radix;
            v /= radix;
        }
        acc % radix
    }

    /// Checks that every gather in every fused iteration touches `2^k`
    /// distinct BRAM banks (no port conflicts). Returns the first violating
    /// `(iteration, base)` if any.
    pub fn verify_conflict_free(&self) -> Result<(), (u32, usize)> {
        let radix = 1usize << self.k;
        for iter in 1..=self.fused_iterations() {
            let off = self.fused_offset(iter);
            // Bases: every index whose digit at the iteration position is 0.
            let mut base = 0usize;
            while base + (radix - 1) * off < self.n {
                let mut seen = vec![false; radix];
                for e in 0..radix {
                    let b = self.bram_bank(base + e * off);
                    if seen[b] {
                        return Err((iter, base));
                    }
                    seen[b] = true;
                }
                base += if (base + 1).is_multiple_of(off) {
                    (radix - 1) * off + 1
                } else {
                    1
                };
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_offsets_for_4096_k3() {
        let p = AccessPattern::new(4096, 3);
        // Conventional: 12 iterations, offsets 1,2,4,...,2048.
        assert_eq!(p.conventional_iterations(), 12);
        assert_eq!(p.conventional_offset(1), 1);
        assert_eq!(p.conventional_offset(12), 2048);
        // Fused: 4 iterations, offsets 1, 8, 64, 512.
        assert_eq!(p.fused_iterations(), 4);
        let offs: Vec<usize> = (1..=4).map(|i| p.fused_offset(i)).collect();
        assert_eq!(offs, vec![1, 8, 64, 512]);
    }

    #[test]
    fn fig5_operand_gathers() {
        let p = AccessPattern::new(4096, 3);
        assert_eq!(p.fused_operands(1, 0), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.fused_operands(2, 0), vec![0, 8, 16, 24, 32, 40, 48, 56]);
        assert_eq!(p.fused_operands(3, 0)[1], 64);
    }

    #[test]
    fn diagonal_banking_is_conflict_free() {
        for (n, k) in [(512usize, 3u32), (4096, 3), (256, 2), (4096, 4)] {
            let p = AccessPattern::new(n, k);
            assert_eq!(p.verify_conflict_free(), Ok(()), "n={n} k={k}");
        }
    }

    #[test]
    fn naive_banking_would_conflict() {
        // Sanity: with linear banking (idx mod 2^k), iteration 2's gather
        // {0, 8, 16, ...} hits bank 0 every time — the diagonal scheme is
        // what avoids this.
        let p = AccessPattern::new(4096, 3);
        let ops = p.fused_operands(2, 0);
        let linear: Vec<usize> = ops.iter().map(|i| i % 8).collect();
        assert!(linear.iter().all(|&b| b == 0));
        let diagonal: Vec<usize> = ops.iter().map(|&i| p.bram_bank(i)).collect();
        let mut sorted = diagonal.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }
}
