//! Iterative radix-2 negacyclic NTT kernels (Longa–Naehrig formulation).
//!
//! The forward transform is decimation-in-time Cooley–Tukey with ψ powers in
//! bit-reversed order; the inverse is Gentleman–Sande. Both are in place and
//! avoid the separate pre/post-twisting passes by folding ψ into the twiddle
//! tables.

use he_math::modops::{add_mod, sub_mod};
use he_math::ShoupMul;

/// Forward negacyclic NTT over `a`, in place.
///
/// `psi_rev[i]` must hold ψ^brv(i) as a Shoup multiplier; `a.len()` must be
/// a power of two matching the table. Prefer [`crate::NttTable::forward`],
/// which enforces both.
pub fn forward_in_place(a: &mut [u64], psi_rev: &[ShoupMul], q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && psi_rev.len() == n);
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let w = &psi_rev[m + i];
            for j in j1..j1 + t {
                let u = a[j];
                let v = w.mul(a[j + t]);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
            }
        }
        m *= 2;
    }
}

/// Inverse negacyclic NTT over `a`, in place, including the final `N⁻¹`
/// scaling.
///
/// `inv_psi_rev[i]` must hold ψ^{-brv(i)} as a Shoup multiplier. Prefer
/// [`crate::NttTable::inverse`].
pub fn inverse_in_place(a: &mut [u64], inv_psi_rev: &[ShoupMul], n_inv: &ShoupMul, q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && inv_psi_rev.len() == n);
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let w = &inv_psi_rev[h + i];
            for j in j1..j1 + t {
                let u = a[j];
                let v = a[j + t];
                a[j] = add_mod(u, v, q);
                a[j + t] = w.mul(sub_mod(u, v, q));
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    for x in a.iter_mut() {
        *x = n_inv.mul(*x);
    }
}

#[cfg(test)]
mod tests {
    use crate::naive;
    use crate::NttTable;

    #[test]
    fn forward_matches_naive_dft() {
        for log_n in [2u32, 3, 4, 6] {
            let n = 1usize << log_n;
            let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
            let t = NttTable::new(n, q);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7919 + 13) % q).collect();
            let mut fast = a.clone();
            t.forward(&mut fast);
            let slow = naive::negacyclic_ntt(&a, q);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn multiply_matches_schoolbook() {
        let n = 32usize;
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        let t = NttTable::new(n, q);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % q).collect();
        assert_eq!(
            t.multiply(&a, &b),
            naive::negacyclic_mul_schoolbook(&a, &b, q)
        );
    }
}
