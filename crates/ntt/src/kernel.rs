//! Production lazy-reduction NTT kernels and the per-table dispatch layer.
//!
//! The paper's §III-A NTT-fusion collapses k butterfly stages into one
//! fused TAM so each 2^k block pays 2^k modular reductions instead of
//! k·2^k. In software the same saving is realised with *lazy (redundant)
//! arithmetic*: Harvey butterflies keep values in `[0, 4q)` (forward) or
//! `[0, 2q)` (inverse), the Shoup twiddle product lands in `[0, 2q)`
//! without correction, and a full reduction happens only at stage-group
//! boundaries — k = 3 stages at a time, mirroring the paper's radix-8
//! fused TAM (Table II's sweet spot).
//!
//! Three kernels sit behind [`crate::NttTable::forward`] / `inverse`:
//!
//! * [`KernelKind::Scalar`] — the seed radix-2 kernels of
//!   [`crate::negacyclic`], one full reduction per stage. Retained
//!   verbatim as the oracle every other kernel is digest-checked against.
//! * [`KernelKind::Lazy`] — the same stage structure with Harvey lazy
//!   butterflies throughout and a single reduction pass at the end.
//! * [`KernelKind::FusedRadix8`] — stage groups of k = 3 (remainders at
//!   radix 4/2): each 8-element block is gathered once, runs 12 lazy
//!   butterflies in registers, and is reduced exactly once per output at
//!   the group boundary. Inner loops are explicit 4- and 8-lane chunked
//!   passes over the contiguous sub-transform columns — the software
//!   stand-in for the paper's 512 vector lanes.
//!
//! All kernels are bit-identical: outputs are fully reduced and modular
//! arithmetic is exact, so the transform value — not just its residue
//! class — matches the scalar oracle at every length.
//!
//! Selection: explicit per-table ([`crate::NttTable::with_kernel`] /
//! `set_kernel`) → process-wide override ([`set_default_kind`]) →
//! `POSEIDON_NTT_KERNEL` environment variable → [`KernelKind::FusedRadix8`].

use he_math::modops::csub;
use he_math::ShoupMul;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which butterfly kernel a table runs its transforms through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Seed radix-2 kernels with a full reduction per stage (the oracle).
    Scalar,
    /// Radix-2 stage structure, Harvey lazy butterflies, one final
    /// reduction pass.
    Lazy,
    /// k = 3 fused stage groups with per-group-boundary reductions — the
    /// paper's radix-8 fused TAM, and the default.
    FusedRadix8,
}

impl KernelKind {
    /// Every kernel, scalar oracle first (sweep order for tests/benches).
    pub const ALL: [KernelKind; 3] = [
        KernelKind::Scalar,
        KernelKind::Lazy,
        KernelKind::FusedRadix8,
    ];

    /// Stable lowercase name (accepted back by [`parse`](Self::parse)).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Lazy => "lazy",
            KernelKind::FusedRadix8 => "fused_radix8",
        }
    }

    /// Parses a kernel name as used by `POSEIDON_NTT_KERNEL`.
    /// Accepts `scalar`, `lazy`, and `fused_radix8`/`fused`/`radix8`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "lazy" => Some(KernelKind::Lazy),
            "fused_radix8" | "fused-radix8" | "fused" | "radix8" => Some(KernelKind::FusedRadix8),
            _ => None,
        }
    }

    /// The kernel named by the `POSEIDON_NTT_KERNEL` environment variable,
    /// if set and recognised.
    pub fn from_env() -> Option<Self> {
        std::env::var("POSEIDON_NTT_KERNEL")
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// The kind newly built tables default to: the process-wide override
    /// when installed, else `POSEIDON_NTT_KERNEL`, else
    /// [`KernelKind::FusedRadix8`].
    pub fn default_kind() -> Self {
        match DEFAULT_OVERRIDE.load(Ordering::Relaxed) {
            1 => KernelKind::Scalar,
            2 => KernelKind::Lazy,
            3 => KernelKind::FusedRadix8,
            _ => Self::from_env().unwrap_or(KernelKind::FusedRadix8),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `0` = not set; else `KernelKind` discriminant + 1.
static DEFAULT_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None`, clears) a process-wide default kernel for
/// tables built afterwards. Takes precedence over `POSEIDON_NTT_KERNEL`;
/// existing tables are unaffected. Intended for benches and sweeps that
/// rebuild whole contexts per kernel.
pub fn set_default_kind(kind: Option<KernelKind>) {
    let v = match kind {
        None => 0,
        Some(KernelKind::Scalar) => 1,
        Some(KernelKind::Lazy) => 2,
        Some(KernelKind::FusedRadix8) => 3,
    };
    DEFAULT_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Debug-build operation counters for reconciling the fused kernel against
/// the analytic [`crate::FusionAnalysis`] model (paper Table II).
///
/// Counters are thread-local and compiled in only under
/// `debug_assertions`; release builds pay nothing and the accessors return
/// zero. A "multiply" is one 64×64 hardware multiply of a twiddle product
/// (each Shoup product counts 2, matching how Table II tallies the
/// unfused butterflies); a "reduction" is one full modular reduction of an
/// output at a fused-group boundary.
pub mod op_counters {
    #[cfg(debug_assertions)]
    use std::cell::Cell;

    #[cfg(debug_assertions)]
    thread_local! {
        static REDUCTIONS: Cell<u64> = const { Cell::new(0) };
        static MULTIPLIES: Cell<u64> = const { Cell::new(0) };
    }

    /// Zeroes this thread's counters.
    pub fn reset() {
        #[cfg(debug_assertions)]
        {
            REDUCTIONS.with(|c| c.set(0));
            MULTIPLIES.with(|c| c.set(0));
        }
    }

    /// Full modular reductions performed by fused kernels on this thread
    /// since [`reset`] (0 in release builds).
    pub fn reductions() -> u64 {
        #[cfg(debug_assertions)]
        {
            REDUCTIONS.with(Cell::get)
        }
        #[cfg(not(debug_assertions))]
        0
    }

    /// Twiddle multiplies performed by fused kernels on this thread since
    /// [`reset`] (0 in release builds).
    pub fn multiplies() -> u64 {
        #[cfg(debug_assertions)]
        {
            MULTIPLIES.with(Cell::get)
        }
        #[cfg(not(debug_assertions))]
        0
    }

    #[inline(always)]
    pub(super) fn count(_reductions: u64, _multiplies: u64) {
        #[cfg(debug_assertions)]
        {
            REDUCTIONS.with(|c| c.set(c.get() + _reductions));
            MULTIPLIES.with(|c| c.set(c.get() + _multiplies));
        }
    }
}

/// Harvey forward butterfly. Inputs in `[0, 4q)`, outputs in `[0, 4q)`:
/// the upper input is folded to `[0, 2q)`, the twiddle product lands in
/// `[0, 2q)` with no correction, and the add/sub pair stays below `4q`.
#[inline(always)]
fn fwd_bf(x: u64, y: u64, w: &ShoupMul, two_q: u64) -> (u64, u64) {
    let x = csub(x, two_q);
    let t = w.mul_lazy_unreduced(y);
    (x + t, x + two_q - t)
}

/// Harvey inverse (Gentleman–Sande) butterfly. Inputs in `[0, 2q)`,
/// outputs in `[0, 2q)`: the sum is folded once, the difference is offset
/// by `2q` before the lazy twiddle product.
#[inline(always)]
fn inv_bf(x: u64, y: u64, w: &ShoupMul, two_q: u64) -> (u64, u64) {
    let s = csub(x + y, two_q);
    let d = x + two_q - y;
    (s, w.mul_lazy_unreduced(d))
}

/// Folds a forward-kernel value from `[0, 4q)` to `[0, q)`.
#[inline(always)]
fn reduce_4q(v: u64, q: u64, two_q: u64) -> u64 {
    csub(csub(v, two_q), q)
}

/// Forward negacyclic NTT with lazy butterflies: the scalar stage
/// structure of [`crate::negacyclic::forward_in_place`], values carried in
/// `[0, 4q)`, one reduction pass at the end. Bit-identical to the scalar
/// kernel.
pub(crate) fn forward_lazy(a: &mut [u64], psi_rev: &[ShoupMul], q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && psi_rev.len() == n);
    let two_q = 2 * q;
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let w = &psi_rev[m + i];
            let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let (u, v) = fwd_bf(*x, *y, w, two_q);
                *x = u;
                *y = v;
            }
        }
        m *= 2;
    }
    for v in a.iter_mut() {
        *v = reduce_4q(*v, q, two_q);
    }
}

/// Inverse negacyclic NTT with lazy butterflies, including the `N⁻¹`
/// scaling folded into the final reduction pass. Values carried in
/// `[0, 2q)`. Bit-identical to the scalar kernel.
pub(crate) fn inverse_lazy(a: &mut [u64], inv_psi_rev: &[ShoupMul], n_inv: &ShoupMul, q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && inv_psi_rev.len() == n);
    let two_q = 2 * q;
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let w = &inv_psi_rev[h + i];
            let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let (u, v) = inv_bf(*x, *y, w, two_q);
                *x = u;
                *y = v;
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    for x in a.iter_mut() {
        *x = csub(n_inv.mul_lazy_unreduced(*x), q);
    }
}

/// Borrows two distinct lanes of a block mutably (`i < j`).
#[inline(always)]
fn pair_mut<const L: usize, const B: usize>(
    v: &mut [[u64; L]; B],
    i: usize,
    j: usize,
) -> (&mut [u64; L], &mut [u64; L]) {
    debug_assert!(i < j);
    let (lo, hi) = v.split_at_mut(j);
    (&mut lo[i], &mut hi[0])
}

/// One forward butterfly across `L` lanes (the chunked, autovectorisable
/// inner pass: both lane arrays are contiguous memory).
#[inline(always)]
fn fwd_bf_lanes<const L: usize>(x: &mut [u64; L], y: &mut [u64; L], w: &ShoupMul, two_q: u64) {
    for l in 0..L {
        let (u, v) = fwd_bf(x[l], y[l], w, two_q);
        x[l] = u;
        y[l] = v;
    }
}

#[inline(always)]
fn inv_bf_lanes<const L: usize>(x: &mut [u64; L], y: &mut [u64; L], w: &ShoupMul, two_q: u64) {
    for l in 0..L {
        let (u, v) = inv_bf(x[l], y[l], w, two_q);
        x[l] = u;
        y[l] = v;
    }
}

/// `L` columns of one forward radix-8 fused block, starting at column
/// `b0`. The block slice spans `8·t_min` elements; lane `e` is the
/// contiguous run `[e·t_min, e·t_min + t_min)`. Three butterfly levels run
/// entirely in registers; each output takes its single full reduction at
/// the write-back (the fused-TAM boundary).
#[inline(always)]
fn fwd_radix8_cols<const L: usize>(
    a: &mut [u64],
    b0: usize,
    t_min: usize,
    w1: &ShoupMul,
    w2: &[ShoupMul],
    w3: &[ShoupMul],
    q: u64,
) {
    let two_q = 2 * q;
    let mut v = [[0u64; L]; 8];
    for (e, lane) in v.iter_mut().enumerate() {
        let s = b0 + e * t_min;
        lane.copy_from_slice(&a[s..s + L]);
    }
    // Level 1 (stage m): pairs (e, e+4), one twiddle.
    for e in 0..4 {
        let (x, y) = pair_mut(&mut v, e, e + 4);
        fwd_bf_lanes(x, y, w1, two_q);
    }
    // Level 2 (stage 2m): pairs (e, e+2) within each half.
    for (h, w) in w2.iter().enumerate() {
        for e in 0..2 {
            let i = 4 * h + e;
            let (x, y) = pair_mut(&mut v, i, i + 2);
            fwd_bf_lanes(x, y, w, two_q);
        }
    }
    // Level 3 (stage 4m): adjacent pairs.
    for (c, w) in w3.iter().enumerate() {
        let (x, y) = pair_mut(&mut v, 2 * c, 2 * c + 1);
        fwd_bf_lanes(x, y, w, two_q);
    }
    // Group boundary: the single modular reduction per output.
    for (e, lane) in v.iter().enumerate() {
        let s = b0 + e * t_min;
        for (out, &val) in a[s..s + L].iter_mut().zip(lane) {
            *out = reduce_4q(val, q, two_q);
        }
    }
    op_counters::count(8 * L as u64, 24 * L as u64);
}

/// All columns of one forward radix-8 fused block, chunked 8 / 4 / narrow.
#[inline]
fn fwd_radix8_block(
    a: &mut [u64],
    t_min: usize,
    w1: &ShoupMul,
    w2: &[ShoupMul],
    w3: &[ShoupMul],
    q: u64,
) {
    if t_min >= 8 {
        for b0 in (0..t_min).step_by(8) {
            fwd_radix8_cols::<8>(a, b0, t_min, w1, w2, w3, q);
        }
    } else if t_min == 4 {
        fwd_radix8_cols::<4>(a, 0, t_min, w1, w2, w3, q);
    } else if t_min == 2 {
        fwd_radix8_cols::<2>(a, 0, t_min, w1, w2, w3, q);
    } else {
        fwd_radix8_cols::<1>(a, 0, t_min, w1, w2, w3, q);
    }
}

/// `L` columns of one forward radix-4 fused block (the 2-stage remainder
/// group when `log2 N mod 3 == 2`).
#[inline(always)]
fn fwd_radix4_cols<const L: usize>(
    a: &mut [u64],
    b0: usize,
    t_min: usize,
    w1: &ShoupMul,
    w2: &[ShoupMul],
    q: u64,
) {
    let two_q = 2 * q;
    let mut v = [[0u64; L]; 4];
    for (e, lane) in v.iter_mut().enumerate() {
        let s = b0 + e * t_min;
        lane.copy_from_slice(&a[s..s + L]);
    }
    for e in 0..2 {
        let (x, y) = pair_mut(&mut v, e, e + 2);
        fwd_bf_lanes(x, y, w1, two_q);
    }
    for (c, w) in w2.iter().enumerate() {
        let (x, y) = pair_mut(&mut v, 2 * c, 2 * c + 1);
        fwd_bf_lanes(x, y, w, two_q);
    }
    for (e, lane) in v.iter().enumerate() {
        let s = b0 + e * t_min;
        for (out, &val) in a[s..s + L].iter_mut().zip(lane) {
            *out = reduce_4q(val, q, two_q);
        }
    }
    op_counters::count(4 * L as u64, 8 * L as u64);
}

#[inline]
fn fwd_radix4_block(a: &mut [u64], t_min: usize, w1: &ShoupMul, w2: &[ShoupMul], q: u64) {
    if t_min >= 4 {
        for b0 in (0..t_min).step_by(4) {
            fwd_radix4_cols::<4>(a, b0, t_min, w1, w2, q);
        }
    } else if t_min == 2 {
        fwd_radix4_cols::<2>(a, 0, t_min, w1, w2, q);
    } else {
        fwd_radix4_cols::<1>(a, 0, t_min, w1, w2, q);
    }
}

/// Forward negacyclic NTT through fused radix-8 stage groups. Bit-identical
/// to the scalar kernel; reductions happen only at group boundaries.
pub(crate) fn forward_fused(a: &mut [u64], psi_rev: &[ShoupMul], q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && psi_rev.len() == n);
    let two_q = 2 * q;
    let log_n = n.trailing_zeros();
    let mut m = 1usize;
    let mut t = n / 2;
    let mut done = 0u32;
    while done < log_n {
        match log_n - done {
            rem if rem >= 3 => {
                let t_min = t / 4;
                for i0 in 0..m {
                    let base = 2 * i0 * t;
                    let w1 = &psi_rev[m + i0];
                    let w2 = &psi_rev[2 * m + 2 * i0..2 * m + 2 * i0 + 2];
                    let w3 = &psi_rev[4 * m + 4 * i0..4 * m + 4 * i0 + 4];
                    fwd_radix8_block(&mut a[base..base + 2 * t], t_min, w1, w2, w3, q);
                }
                m <<= 3;
                t >>= 3;
                done += 3;
            }
            2 => {
                // t == 2 here: one radix-4 group finishes the transform.
                let t_min = t / 2;
                for i0 in 0..m {
                    let base = 2 * i0 * t;
                    let w1 = &psi_rev[m + i0];
                    let w2 = &psi_rev[2 * m + 2 * i0..2 * m + 2 * i0 + 2];
                    fwd_radix4_block(&mut a[base..base + 2 * t], t_min, w1, w2, q);
                }
                m <<= 2;
                t >>= 2;
                done += 2;
            }
            _ => {
                // t == 1: a single lazy stage, reduced at its boundary.
                for i0 in 0..m {
                    let j = 2 * i0;
                    let (u, v) = fwd_bf(a[j], a[j + 1], &psi_rev[m + i0], two_q);
                    a[j] = reduce_4q(u, q, two_q);
                    a[j + 1] = reduce_4q(v, q, two_q);
                }
                op_counters::count(2 * m as u64, 2 * m as u64);
                m <<= 1;
                t >>= 1;
                done += 1;
            }
        }
    }
}

/// `L` columns of one inverse radix-8 fused block. Lane `e` is the
/// contiguous run `[e·t, e·t + t)` of the block; values stay in `[0, 2q)`
/// throughout, so the group boundary needs no extra reduction — the final
/// `N⁻¹` pass in [`inverse_fused`] fully reduces.
#[inline(always)]
fn inv_radix8_cols<const L: usize>(
    a: &mut [u64],
    b0: usize,
    t: usize,
    wa: &[ShoupMul],
    wb: &[ShoupMul],
    wc: &ShoupMul,
    q: u64,
) {
    let two_q = 2 * q;
    let mut v = [[0u64; L]; 8];
    for (e, lane) in v.iter_mut().enumerate() {
        let s = b0 + e * t;
        lane.copy_from_slice(&a[s..s + L]);
    }
    // Level 1 (finest stage): adjacent pairs.
    for (c, w) in wa.iter().enumerate() {
        let (x, y) = pair_mut(&mut v, 2 * c, 2 * c + 1);
        inv_bf_lanes(x, y, w, two_q);
    }
    // Level 2: pairs (e, e+2) within each half.
    for (h, w) in wb.iter().enumerate() {
        for e in 0..2 {
            let i = 4 * h + e;
            let (x, y) = pair_mut(&mut v, i, i + 2);
            inv_bf_lanes(x, y, w, two_q);
        }
    }
    // Level 3 (coarsest stage in the group): pairs (e, e+4).
    for e in 0..4 {
        let (x, y) = pair_mut(&mut v, e, e + 4);
        inv_bf_lanes(x, y, wc, two_q);
    }
    for (e, lane) in v.iter().enumerate() {
        let s = b0 + e * t;
        a[s..s + L].copy_from_slice(lane);
    }
    op_counters::count(0, 24 * L as u64);
}

#[inline]
fn inv_radix8_block(
    a: &mut [u64],
    t: usize,
    wa: &[ShoupMul],
    wb: &[ShoupMul],
    wc: &ShoupMul,
    q: u64,
) {
    if t >= 8 {
        for b0 in (0..t).step_by(8) {
            inv_radix8_cols::<8>(a, b0, t, wa, wb, wc, q);
        }
    } else if t == 4 {
        inv_radix8_cols::<4>(a, 0, t, wa, wb, wc, q);
    } else if t == 2 {
        inv_radix8_cols::<2>(a, 0, t, wa, wb, wc, q);
    } else {
        inv_radix8_cols::<1>(a, 0, t, wa, wb, wc, q);
    }
}

/// `L` columns of one inverse radix-4 fused block.
#[inline(always)]
fn inv_radix4_cols<const L: usize>(
    a: &mut [u64],
    b0: usize,
    t: usize,
    wa: &[ShoupMul],
    wb: &ShoupMul,
    q: u64,
) {
    let two_q = 2 * q;
    let mut v = [[0u64; L]; 4];
    for (e, lane) in v.iter_mut().enumerate() {
        let s = b0 + e * t;
        lane.copy_from_slice(&a[s..s + L]);
    }
    for (c, w) in wa.iter().enumerate() {
        let (x, y) = pair_mut(&mut v, 2 * c, 2 * c + 1);
        inv_bf_lanes(x, y, w, two_q);
    }
    for e in 0..2 {
        let (x, y) = pair_mut(&mut v, e, e + 2);
        inv_bf_lanes(x, y, wb, two_q);
    }
    for (e, lane) in v.iter().enumerate() {
        let s = b0 + e * t;
        a[s..s + L].copy_from_slice(lane);
    }
    op_counters::count(0, 8 * L as u64);
}

#[inline]
fn inv_radix4_block(a: &mut [u64], t: usize, wa: &[ShoupMul], wb: &ShoupMul, q: u64) {
    if t >= 4 {
        for b0 in (0..t).step_by(4) {
            inv_radix4_cols::<4>(a, b0, t, wa, wb, q);
        }
    } else if t == 2 {
        inv_radix4_cols::<2>(a, 0, t, wa, wb, q);
    } else {
        inv_radix4_cols::<1>(a, 0, t, wa, wb, q);
    }
}

/// Inverse negacyclic NTT through fused radix-8 stage groups, including
/// the final `N⁻¹` scaling. Bit-identical to the scalar kernel.
pub(crate) fn inverse_fused(a: &mut [u64], inv_psi_rev: &[ShoupMul], n_inv: &ShoupMul, q: u64) {
    let n = a.len();
    debug_assert!(n.is_power_of_two() && inv_psi_rev.len() == n);
    let two_q = 2 * q;
    let mut t = 1usize;
    let mut m = n;
    while m > 1 {
        match m.trailing_zeros() {
            rem if rem >= 3 => {
                let groups = m / 8;
                for i in 0..groups {
                    let base = i * 8 * t;
                    let wa = &inv_psi_rev[m / 2 + 4 * i..m / 2 + 4 * i + 4];
                    let wb = &inv_psi_rev[m / 4 + 2 * i..m / 4 + 2 * i + 2];
                    let wc = &inv_psi_rev[m / 8 + i];
                    inv_radix8_block(&mut a[base..base + 8 * t], t, wa, wb, wc, q);
                }
                t *= 8;
                m /= 8;
            }
            2 => {
                let groups = m / 4;
                for i in 0..groups {
                    let base = i * 4 * t;
                    let wa = &inv_psi_rev[m / 2 + 2 * i..m / 2 + 2 * i + 2];
                    let wb = &inv_psi_rev[m / 4 + i];
                    inv_radix4_block(&mut a[base..base + 4 * t], t, wa, wb, q);
                }
                t *= 4;
                m /= 4;
            }
            _ => {
                // One remaining Gentleman–Sande stage.
                let h = m / 2;
                let mut j1 = 0;
                for i in 0..h {
                    let w = &inv_psi_rev[h + i];
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                        let (u, v) = inv_bf(*x, *y, w, two_q);
                        *x = u;
                        *y = v;
                    }
                    j1 += 2 * t;
                }
                op_counters::count(0, m as u64 * t as u64);
                t *= 2;
                m = h;
            }
        }
    }
    for x in a.iter_mut() {
        *x = csub(n_inv.mul_lazy_unreduced(*x), q);
    }
    op_counters::count(n as u64, 2 * n as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NttTable;

    #[test]
    fn kind_parsing_round_trips() {
        for k in KernelKind::ALL {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
        }
        assert_eq!(KernelKind::parse("fused"), Some(KernelKind::FusedRadix8));
        assert_eq!(KernelKind::parse("radix8"), Some(KernelKind::FusedRadix8));
        assert_eq!(KernelKind::parse("RADIX8"), Some(KernelKind::FusedRadix8));
        assert_eq!(KernelKind::parse("nope"), None);
    }

    #[test]
    fn default_override_wins_and_clears() {
        set_default_kind(Some(KernelKind::Scalar));
        assert_eq!(KernelKind::default_kind(), KernelKind::Scalar);
        set_default_kind(None);
        // Without the override the result depends on the environment, but
        // it must be a valid kind.
        let _ = KernelKind::default_kind();
    }

    fn sweep(kind: KernelKind) {
        for log_n in 1..=10u32 {
            let n = 1usize << log_n;
            let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
            let scalar = NttTable::with_kernel(n, q, KernelKind::Scalar);
            let lazy = NttTable::with_kernel(n, q, kind);
            let input: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761 + 97) % q).collect();

            let mut want = input.clone();
            scalar.forward(&mut want);
            let mut got = input.clone();
            lazy.forward(&mut got);
            assert_eq!(want, got, "forward {kind} n={n}");

            scalar.inverse(&mut want);
            lazy.inverse(&mut got);
            assert_eq!(want, got, "inverse {kind} n={n}");
            assert_eq!(got, input, "round trip {kind} n={n}");
        }
    }

    #[test]
    fn lazy_matches_scalar_all_lengths() {
        sweep(KernelKind::Lazy);
    }

    #[test]
    fn fused_matches_scalar_all_lengths() {
        sweep(KernelKind::FusedRadix8);
    }

    #[test]
    fn lazy_kernels_survive_extreme_residues() {
        // All-(q-1) inputs maximise every intermediate in the redundant
        // ranges; the invariants must hold without overflow.
        let n = 64usize;
        let q = he_math::prime::ntt_prime(61, 2 * n as u64).unwrap();
        let scalar = NttTable::with_kernel(n, q, KernelKind::Scalar);
        let input = vec![q - 1; n];
        for kind in [KernelKind::Lazy, KernelKind::FusedRadix8] {
            let t = NttTable::with_kernel(n, q, kind);
            let mut want = input.clone();
            scalar.forward(&mut want);
            let mut got = input.clone();
            t.forward(&mut got);
            assert_eq!(want, got, "{kind}");
            t.inverse(&mut got);
            assert_eq!(got, input, "{kind} round trip");
        }
    }
}
