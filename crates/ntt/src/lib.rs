//! Negacyclic Number Theoretic Transform with Poseidon's *NTT-fusion*.
//!
//! The ring underlying RNS-CKKS is `Z_q[X]/(X^N + 1)`; multiplying two
//! polynomials there costs O(N²) schoolbook but O(N log N) through the
//! negacyclic ("ψ-twisted") NTT when `q ≡ 1 (mod 2N)`.
//!
//! This crate provides:
//!
//! * [`table::NttTable`] — per-(N, q) precomputed twiddle tables (ψ powers in
//!   bit-reversed order, Shoup constants, N⁻¹).
//! * [`negacyclic`] — the classic iterative radix-2 forward (Cooley–Tukey,
//!   decimation-in-time) and inverse (Gentleman–Sande) transforms, retained
//!   as the bit-exact oracle for the production kernels.
//! * [`kernel`] — the production lazy-reduction kernels behind
//!   [`NttTable::forward`]/[`NttTable::inverse`]: Harvey butterflies in
//!   redundant representation with fused radix-8 stage groups
//!   ([`KernelKind::FusedRadix8`], the default), selectable per table or
//!   via `POSEIDON_NTT_KERNEL`.
//! * [`fusion`] — the radix-2^k *fused* NTT of the paper's §III-A: k
//!   butterfly stages are collapsed into one "fused TAM" kernel that applies
//!   a precomputed 2^k × 2^k coefficient matrix with a **single** modular
//!   reduction per output, trading extra multiplies for fewer reductions
//!   (paper Table II). The fused transform is bit-exact with the radix-2 one.
//! * [`access`] — the BRAM data-access-pattern model of §IV-B (paper Table
//!   III and Fig. 5): per-iteration index offsets for conventional vs fused
//!   NTT, and the diagonal BRAM-bank assignment that avoids port conflicts.
//! * [`naive`] — an O(N²) reference DFT used as the testing oracle.
//!
//! # Examples
//!
//! ```
//! use he_ntt::table::NttTable;
//!
//! let q = he_math::prime::ntt_prime(30, 1 << 11).unwrap();
//! let table = NttTable::new(1 << 10, q);
//! let mut a = vec![0u64; 1 << 10];
//! a[1] = 1; // X
//! let mut b = a.clone();
//! table.forward(&mut a);
//! table.forward(&mut b);
//! // pointwise product = X² in evaluation form
//! let mut c: Vec<u64> = a.iter().zip(&b)
//!     .map(|(&x, &y)| he_math::modops::mul_mod(x, y, q))
//!     .collect();
//! table.inverse(&mut c);
//! assert_eq!(c[2], 1);
//! assert!(c.iter().enumerate().all(|(i, &v)| v == 0 || i == 2));
//! ```

pub mod access;
pub mod fusion;
pub mod kernel;
pub mod naive;
pub mod negacyclic;
pub mod table;

pub use fusion::{FusedNtt, FusionAnalysis};
pub use kernel::{set_default_kind, KernelKind};
pub use table::{galois_permutation, NttTable};
