//! Quadratic-time reference implementations used as testing oracles.
//!
//! These are deliberately simple: direct evaluation of the negacyclic DFT
//! definition and schoolbook polynomial multiplication with the `X^N = -1`
//! wraparound. Every fast path in this crate is validated against them.

use crate::table::bit_reverse;
use he_math::modops::{add_mod, mul_mod, pow_mod, sub_mod};
use he_math::prime::root_of_unity;

/// Evaluates the negacyclic NTT by its definition, O(N²).
///
/// Output ordering matches [`crate::NttTable::forward`]: entry `j` holds the
/// evaluation of `a` at `ψ^(2·brv(j)+1)`, where ψ is the 2N-th primitive
/// root used by the tables and `brv` reverses `log2(N)` bits.
///
/// # Examples
///
/// ```
/// let q = he_math::prime::ntt_prime(20, 8).unwrap();
/// let out = he_ntt::naive::negacyclic_ntt(&[3, 0, 0, 0], q);
/// assert_eq!(out, vec![3, 3, 3, 3]);
/// ```
pub fn negacyclic_ntt(a: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    assert!(n.is_power_of_two());
    let log_n = n.trailing_zeros();
    let psi = root_of_unity(2 * n as u64, q);
    (0..n)
        .map(|j| {
            let e = 2 * bit_reverse(j as u64, log_n) + 1;
            let base = pow_mod(psi, e, q);
            let mut acc = 0u64;
            let mut pw = 1u64;
            for &c in a {
                acc = add_mod(acc, mul_mod(c, pw, q), q);
                pw = mul_mod(pw, base, q);
            }
            acc
        })
        .collect()
}

/// Schoolbook negacyclic product `a · b mod (X^N + 1, q)`, O(N²).
///
/// # Panics
///
/// Panics if `a` and `b` differ in length.
///
/// # Examples
///
/// ```
/// let q = 97u64;
/// // (1 + X)·X³ = X³ + X⁴ = X³ - 1 in Z_q[X]/(X⁴+1)
/// let p = he_ntt::naive::negacyclic_mul_schoolbook(&[1, 1, 0, 0], &[0, 0, 0, 1], q);
/// assert_eq!(p, vec![96, 0, 0, 1]);
/// ```
pub fn negacyclic_mul_schoolbook(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operands must have equal degree");
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            let p = mul_mod(x, y, q);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], p, q);
            } else {
                out[k - n] = sub_mod(out[k - n], p, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_product_wraps_with_sign() {
        let q = 97u64;
        let n = 8;
        let mut x7 = vec![0u64; n];
        x7[7] = 1;
        let mut x2 = vec![0u64; n];
        x2[2] = 1;
        // X^7 · X^2 = X^9 = -X
        let p = negacyclic_mul_schoolbook(&x7, &x2, q);
        assert_eq!(p[1], q - 1);
        assert_eq!(p.iter().filter(|&&v| v != 0).count(), 1);
    }

    #[test]
    fn schoolbook_is_commutative() {
        let q = 786_433u64;
        let a: Vec<u64> = (0..16u64).map(|i| i * 3 + 1).collect();
        let b: Vec<u64> = (0..16u64).map(|i| i * i + 2).collect();
        assert_eq!(
            negacyclic_mul_schoolbook(&a, &b, q),
            negacyclic_mul_schoolbook(&b, &a, q)
        );
    }
}
