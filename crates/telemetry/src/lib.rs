//! Observability substrate for the Poseidon software stack.
//!
//! The paper's whole evaluation is *measured* per-operator behaviour:
//! operator usage per basic operation (Table I), per-operation time
//! breakdowns (Figs 7–9), bandwidth utilisation (Table VII). This crate is
//! the measurement layer those regenerators sit on when they run against
//! the functional library instead of the analytical model.
//!
//! Three primitives, all `std`-only and lock-free on the hot path:
//!
//! * [`Metric`] — an atomic bundle per named scope: an event counter, an
//!   element (work-item) counter, a monotonic busy-time accumulator, and a
//!   fixed-bucket log₂ latency [`Histogram`].
//! * [`Span`] — an RAII timer guard ([`Metric::span`]): measures one timed
//!   region with `Instant` and folds duration + element count into the
//!   metric on drop. [`Metric::add`] is the timer-free variant for pure
//!   counting (the operator-pool path).
//! * [`Registry`] — a thread-safe name → `Arc<Metric>` map. The process
//!   global ([`Registry::global`]) is what instrumented crates use; handles
//!   (`Arc<Metric>`) are grabbed once (per `Evaluator`, per static) so the
//!   hot path never touches the map lock.
//!
//! [`Snapshot`] captures the registry (or any metric set) at an instant and
//! renders to an aligned text table or JSON (hand-rolled — this crate has
//! zero dependencies by design, matching the offline build).
//!
//! Scope naming convention is dotted lower-case paths mirroring the layers:
//! `ntt.forward`, `rns.convert`, `rescale`, `keyswitch.digit`, `eval.mul`,
//! `auto.hfauto`, `pool.mm`, `par.dispatch`, `boot.evalmod`.
//!
//! Instrumented crates gate every call site behind their own `telemetry`
//! cargo feature; with the feature off the sites compile away entirely, so
//! this crate is only ever linked when observability was asked for.
//!
//! # Examples
//!
//! ```
//! use poseidon_telemetry::Registry;
//! let m = Registry::global().scope("example.work");
//! {
//!     let _span = m.span(64); // 64 elements processed in this region
//!     let _ = (0..64u64).sum::<u64>();
//! }
//! let snap = Registry::global().snapshot();
//! let s = snap.get("example.work").unwrap();
//! assert_eq!(s.count, 1);
//! assert_eq!(s.items, 64);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of latency buckets: bucket `i` holds durations `d` with
/// `⌊log₂ d_ns⌋ = i`, saturating at the last bucket (≈ 2.1 s and above).
pub const HIST_BUCKETS: usize = 32;

/// Fixed-bucket log₂-nanosecond latency histogram.
///
/// Recording is a single relaxed atomic increment; there is no dynamic
/// allocation after construction. Bucket `i` covers `[2^i, 2^{i+1})` ns.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// Bucket index for a duration in nanoseconds.
    #[inline]
    pub fn bucket_index(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Current bucket counts.
    pub fn counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The per-scope metric bundle: event count, element count, busy nanos,
/// and a latency histogram of span durations.
///
/// All four update with relaxed atomics — cross-scope consistency is not
/// needed (snapshots are diagnostic, not transactional), and the counters
/// themselves are exact.
#[derive(Debug, Default)]
pub struct Metric {
    count: AtomicU64,
    items: AtomicU64,
    nanos: AtomicU64,
    hist: Histogram,
}

impl Metric {
    /// A fresh, unregistered metric (instance-local counters — the
    /// operator pool uses these so each pool keeps exact per-instance
    /// counts regardless of how many pools a process holds).
    pub fn new() -> Arc<Metric> {
        Arc::new(Metric::default())
    }

    /// Counts one event covering `items` elements, without timing.
    #[inline]
    pub fn add(&self, items: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
    }

    /// Opens a timed span covering `items` elements; the drop of the
    /// returned guard records the duration.
    #[inline]
    pub fn span(&self, items: u64) -> Span<'_> {
        Span {
            metric: self,
            items,
            start: Instant::now(),
        }
    }

    /// Records a completed region measured by the caller.
    #[inline]
    pub fn record_nanos(&self, items: u64, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.hist.record(nanos);
    }

    /// Times `f` as one span.
    #[inline]
    pub fn time<R>(&self, items: u64, f: impl FnOnce() -> R) -> R {
        let _span = self.span(items);
        f()
    }

    /// Events recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Elements recorded so far.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Total busy nanoseconds recorded so far.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// The latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Zeroes the metric (counters and histogram).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.items.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
        self.hist.reset();
    }

    /// Captures the metric under a scope name.
    pub fn stats(&self, name: &str) -> ScopeStats {
        ScopeStats {
            name: name.to_string(),
            count: self.count(),
            items: self.items(),
            nanos: self.nanos(),
            buckets: self.hist.counts(),
        }
    }
}

/// RAII guard of one timed region (see [`Metric::span`]).
#[derive(Debug)]
pub struct Span<'a> {
    metric: &'a Metric,
    items: u64,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.metric.record_nanos(self.items, nanos);
    }
}

/// Thread-safe name → metric map.
///
/// Scope lookup takes a mutex, so instrumented code resolves its scopes
/// once (into a static or a per-object handle) and then runs lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    scopes: Mutex<BTreeMap<String, Arc<Metric>>>,
}

impl Registry {
    /// A fresh private registry (tests, per-subsystem isolation).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every instrumented crate records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Resolves (creating on first use) the metric for `name`.
    pub fn scope(&self, name: &str) -> Arc<Metric> {
        let mut map = self.scopes.lock().expect("telemetry registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Resolves the metric for an indexed scope family, `"{base}{index}"`
    /// — e.g. `scope_indexed("serve.shard", 2)` → `serve.shard2`. Sharded
    /// subsystems use one scope per lane/worker so imbalance is visible in
    /// a snapshot, while [`Snapshot::sum_prefix`] recovers the aggregate.
    pub fn scope_indexed(&self, base: &str, index: usize) -> Arc<Metric> {
        self.scope(&format!("{base}{index}"))
    }

    /// Registers an externally created metric under `name` (used to expose
    /// instance-local counters, e.g. one operator pool's, in a snapshot
    /// namespace). Replaces any previous metric of that name.
    pub fn register(&self, name: &str, metric: Arc<Metric>) {
        let mut map = self.scopes.lock().expect("telemetry registry poisoned");
        map.insert(name.to_string(), metric);
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        let map = self.scopes.lock().expect("telemetry registry poisoned");
        map.keys().cloned().collect()
    }

    /// Zeroes every registered metric (registrations survive).
    pub fn reset(&self) {
        let map = self.scopes.lock().expect("telemetry registry poisoned");
        for m in map.values() {
            m.reset();
        }
    }

    /// Captures all scopes at this instant.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.scopes.lock().expect("telemetry registry poisoned");
        Snapshot {
            scopes: map.iter().map(|(n, m)| m.stats(n)).collect(),
        }
    }
}

/// One scope's captured statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeStats {
    /// Scope name (dotted path).
    pub name: String,
    /// Events (spans or `add` calls).
    pub count: u64,
    /// Elements covered by those events.
    pub items: u64,
    /// Total busy nanoseconds (0 for untimed counters).
    pub nanos: u64,
    /// Latency histogram bucket counts (log₂-ns buckets).
    pub buckets: [u64; HIST_BUCKETS],
}

impl ScopeStats {
    /// Mean span duration in nanoseconds (0 when untimed or empty).
    pub fn mean_nanos(&self) -> u64 {
        self.nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile from the histogram: the upper bound (ns) of
    /// the bucket containing the `q`-quantile observation, or 0 if empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << HIST_BUCKETS
    }
}

/// A point-in-time capture of a metric set, renderable as text or JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Captured scopes, sorted by name.
    pub scopes: Vec<ScopeStats>,
}

impl Snapshot {
    /// Builds a snapshot from explicit `(name, metric)` pairs (sorted by
    /// name) — how instance-local metric groups export themselves.
    pub fn from_metrics<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a Metric)>) -> Snapshot {
        let mut scopes: Vec<ScopeStats> = pairs.into_iter().map(|(n, m)| m.stats(n)).collect();
        scopes.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { scopes }
    }

    /// Stats for one scope, if present.
    pub fn get(&self, name: &str) -> Option<&ScopeStats> {
        self.scopes.iter().find(|s| s.name == name)
    }

    /// Scopes whose name starts with `prefix` (e.g. `"pool."`).
    pub fn with_prefix(&self, prefix: &str) -> Vec<&ScopeStats> {
        self.scopes
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// Aggregate `(count, items)` over every scope whose name starts with
    /// `prefix` — the rollup view of an indexed scope family such as the
    /// per-shard `serve.shard{N}.*` counters.
    pub fn sum_prefix(&self, prefix: &str) -> (u64, u64) {
        self.with_prefix(prefix)
            .iter()
            .fold((0, 0), |(c, i), s| (c + s.count, i + s.items))
    }

    /// The scope-by-scope difference `self − earlier` (counters only;
    /// histograms subtract bucket-wise, saturating at zero). Scopes absent
    /// from `earlier` pass through unchanged.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let scopes = self
            .scopes
            .iter()
            .map(|s| {
                let Some(e) = earlier.get(&s.name) else {
                    return s.clone();
                };
                let mut buckets = [0u64; HIST_BUCKETS];
                for (o, (&a, &b)) in buckets.iter_mut().zip(s.buckets.iter().zip(&e.buckets)) {
                    *o = a.saturating_sub(b);
                }
                ScopeStats {
                    name: s.name.clone(),
                    count: s.count.saturating_sub(e.count),
                    items: s.items.saturating_sub(e.items),
                    nanos: s.nanos.saturating_sub(e.nanos),
                    buckets,
                }
            })
            .collect();
        Snapshot { scopes }
    }

    /// Renders an aligned text table (one row per non-empty scope).
    pub fn to_text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>16} {:>12} {:>10} {:>10} {:>10}\n",
            "scope", "count", "items", "total ms", "mean us", "p50 us", "p99 us"
        ));
        for s in &self.scopes {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<20} {:>12} {:>16} {:>12.3} {:>10.2} {:>10.2} {:>10.2}\n",
                s.name,
                s.count,
                s.items,
                s.nanos as f64 / 1e6,
                s.mean_nanos() as f64 / 1e3,
                s.quantile_nanos(0.5) as f64 / 1e3,
                s.quantile_nanos(0.99) as f64 / 1e3,
            ));
        }
        out
    }

    /// Renders JSON (hand-rolled: scope names are internal identifiers,
    /// so only basic string escaping is applied).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"scopes\":[");
        for (i, s) in self.scopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = s.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"items\":{},\"nanos\":{},\"buckets\":[{}]}}",
                esc(&s.name),
                s.count,
                s.items,
                s.nanos,
                buckets.join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0); // clamped to 1 ns
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn metric_accumulates_and_resets() {
        let m = Metric::new();
        m.add(10);
        m.add(5);
        m.record_nanos(3, 1500);
        assert_eq!(m.count(), 3);
        assert_eq!(m.items(), 18);
        assert_eq!(m.nanos(), 1500);
        assert_eq!(m.histogram().counts()[Histogram::bucket_index(1500)], 1);
        m.reset();
        assert_eq!((m.count(), m.items(), m.nanos()), (0, 0, 0));
    }

    #[test]
    fn span_records_on_drop() {
        let m = Metric::new();
        {
            let _s = m.span(7);
        }
        assert_eq!(m.count(), 1);
        assert_eq!(m.items(), 7);
        // Even an empty region takes ≥ 0 ns; the histogram gained one entry.
        assert_eq!(m.histogram().counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn registry_shares_scopes_by_name() {
        let r = Registry::new();
        let a = r.scope("x.y");
        let b = r.scope("x.y");
        a.add(3);
        assert_eq!(b.items(), 3);
        assert_eq!(r.names(), vec!["x.y".to_string()]);
        r.reset();
        assert_eq!(b.items(), 0);
    }

    #[test]
    fn snapshot_diff_and_lookup() {
        let r = Registry::new();
        r.scope("a").add(4);
        let early = r.snapshot();
        r.scope("a").add(6);
        r.scope("b").record_nanos(1, 100);
        let later = r.snapshot();
        let d = later.since(&early);
        assert_eq!(d.get("a").unwrap().items, 6);
        assert_eq!(d.get("a").unwrap().count, 1);
        assert_eq!(d.get("b").unwrap().nanos, 100);
        assert_eq!(d.with_prefix("a").len(), 1);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let m = Metric::new();
        for _ in 0..99 {
            m.record_nanos(1, 100); // bucket 6: [64, 128)
        }
        m.record_nanos(1, 1 << 20); // one ~1 ms outlier
        let s = m.stats("q");
        assert_eq!(s.quantile_nanos(0.5), 1 << 7);
        assert_eq!(s.quantile_nanos(0.99), 1 << 7);
        assert_eq!(s.quantile_nanos(1.0), 1 << 21);
    }

    #[test]
    fn renders_text_and_json() {
        let r = Registry::new();
        r.scope("ntt.forward").record_nanos(1024, 2_000_000);
        r.scope("empty.scope"); // zero-count scopes are hidden in text
        let snap = r.snapshot();
        let t = snap.to_text_table();
        assert!(t.contains("ntt.forward"));
        assert!(!t.contains("empty.scope"));
        let j = snap.to_json();
        assert!(j.starts_with("{\"scopes\":["));
        assert!(j.contains("\"name\":\"empty.scope\""));
        assert!(j.contains("\"nanos\":2000000"));
    }

    #[test]
    fn from_metrics_sorts_by_name() {
        let a = Metric::new();
        let b = Metric::new();
        a.add(1);
        b.add(2);
        let snap = Snapshot::from_metrics([("z.last", &*a), ("a.first", &*b)]);
        assert_eq!(snap.scopes[0].name, "a.first");
        assert_eq!(snap.scopes[1].name, "z.last");
    }
}
