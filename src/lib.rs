//! Facade crate re-exporting the Poseidon reproduction stack.
pub use he_ckks as ckks;
pub use he_math as math;
pub use he_ntt as ntt;
pub use he_rns as rns;
pub use poseidon_core as core;
#[cfg(feature = "faults")]
pub use poseidon_faults as faults;
pub use poseidon_par as par;
pub use poseidon_serve as serve;
pub use poseidon_sim as sim;
pub use poseidon_wire as wire;
