//! Regression tests for the panic-free evaluation surface: the degenerate
//! inputs that used to abort the process mid-pipeline now come back as
//! typed [`EvalError`]s through the `try_*` API, while the legacy
//! panicking wrappers keep their historical messages for callers that
//! still match on them.

use poseidon::ckks::bootstrap::Bootstrapper;
use poseidon::ckks::encoding::Complex;
use poseidon::ckks::linear::PlainMatrix;
use poseidon::ckks::prelude::*;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x9A41C)
}

fn encrypt(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng) -> Ciphertext {
    let z = [Complex::new(0.5, 0.0), Complex::new(-0.25, 0.125)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// A bootstrap invoked on a ciphertext that is not exhausted (ModRaise
/// expects level 0) is a typed `LevelMismatch`, not a process abort.
#[test]
fn try_bootstrap_rejects_non_exhausted_input_with_a_typed_error() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let eval = Evaluator::new(&ctx);
    let bs = Bootstrapper::new(&ctx, 4, 2);

    let fresh = encrypt(&ctx, &keys, &mut rng);
    assert!(fresh.level() > 0, "fresh ciphertext must not be exhausted");
    match bs.try_bootstrap(&eval, &keys, &fresh) {
        Err(EvalError::LevelMismatch { .. }) => {}
        other => panic!("expected LevelMismatch, got {other:?}"),
    }
}

/// An all-zero linear-transform matrix has no live diagonal to
/// accumulate: `try_apply`/`try_apply_bsgs` report `EmptyOperands`.
#[test]
fn zero_matrix_apply_is_empty_operands_not_a_panic() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let mut keys = KeySet::generate(&ctx, &mut rng);
    for s in 1..4 {
        keys.add_rotation_key(s, &mut rng);
    }
    let eval = Evaluator::new(&ctx);
    let ct = encrypt(&ctx, &keys, &mut rng);
    let zero = PlainMatrix::new(vec![vec![Complex::new(0.0, 0.0); 4]; 4]);

    assert_eq!(
        zero.try_apply(&eval, &keys, &ct).unwrap_err(),
        EvalError::EmptyOperands
    );
    assert_eq!(
        zero.try_apply_bsgs(&eval, &keys, &ct).unwrap_err(),
        EvalError::EmptyOperands
    );
}

/// The panicking wrappers still panic — with the same message text they
/// always had, routed through the `try_*` path underneath.
#[test]
fn legacy_wrappers_keep_their_panic_messages() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);
    let ct = encrypt(&ctx, &keys, &mut rng);
    let zero = PlainMatrix::new(vec![vec![Complex::new(0.0, 0.0); 4]; 4]);

    let panic_message = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        zero.apply(&eval, &keys, &ct)
    }))
    .expect_err("zero matrix must still panic through the legacy wrapper");
    let text = panic_message
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic_message.downcast_ref::<String>().cloned())
        .expect("panic payload should be a string");
    assert_eq!(text, "matrix must have a non-zero diagonal");
}

/// Wire + serve smoke from the facade crate: a ciphertext survives the
/// codec bit-for-bit and a served op matches the local evaluator, while
/// a truncated frame decodes to a typed `WireError`.
#[test]
fn facade_wire_and_serve_round_trip() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let keys = KeySet::generate(&ctx, &mut rng);
    let ct = encrypt(&ctx, &keys, &mut rng);

    let frame = poseidon::wire::encode_ciphertext(&ctx, &ct);
    let back = poseidon::wire::decode_ciphertext(&ctx, &frame).expect("round trip");
    assert_eq!(back.c0(), ct.c0());
    assert_eq!(back.c1(), ct.c1());
    assert!(matches!(
        poseidon::wire::decode_ciphertext(&ctx, &frame[..frame.len() - 1]),
        Err(poseidon::wire::WireError::ChecksumMismatch { .. })
            | Err(poseidon::wire::WireError::Truncated { .. })
    ));

    let service = poseidon::serve::EvalService::start(poseidon::serve::ServiceConfig::default());
    service.register_tenant("acme", ctx.clone(), keys.clone());
    let served = service
        .call(
            "acme",
            poseidon::serve::Request::Add {
                a: ct.clone(),
                b: ct.clone(),
            },
        )
        .expect("served add");
    let local = Evaluator::new(&ctx).add(&ct, &ct);
    assert_eq!(served.c0(), local.c0());
    assert_eq!(served.c1(), local.c1());
}
