//! Cross-crate integration tests: the functional CKKS library, the operator
//! layer, and the accelerator model working together.

use poseidon::ckks::encoding::Complex;
use poseidon::ckks::prelude::*;
use poseidon::core::{BasicOp, HfAuto, OpParams, OperatorPool};
use poseidon::sim::workloads::Benchmark;
use poseidon::sim::{AcceleratorConfig, Simulator};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x5EED)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    vals: &[f64],
) -> Ciphertext {
    let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext, n: usize) -> Vec<f64> {
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), n)
        .iter()
        .map(|c| c.re)
        .collect()
}

#[test]
fn polynomial_pipeline_matches_plaintext_math() {
    // Evaluate f(x, y) = (x·y − x)·y + 2 across four slots.
    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rng();
    let keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);
    let xs = [1.0, -0.5, 2.0, 0.75];
    let ys = [0.5, 3.0, -1.0, 1.25];
    let ct_x = encrypt(&ctx, &keys, &mut rng, &xs);
    let ct_y = encrypt(&ctx, &keys, &mut rng, &ys);

    let xy = eval.rescale(&eval.mul(&ct_x, &ct_y, &keys));
    let xy_minus_x = eval.sub(&xy, &eval.adjust(&ct_x, xy.level(), xy.scale()));
    let t = eval.rescale(&eval.mul(
        &xy_minus_x,
        &eval.adjust(&ct_y, xy_minus_x.level(), xy_minus_x.scale()),
        &keys,
    ));
    let two = eval.encode_at_level(&[Complex::new(2.0, 0.0)], t.scale(), t.level());
    let out = eval.add_plain(&t, &two);

    let got = decrypt(&ctx, &keys, &out, 4);
    for i in 0..4 {
        let want = (xs[i] * ys[i] - xs[i]) * ys[i] + 2.0;
        assert!(
            (got[i] - want).abs() < 0.02,
            "slot {i}: {} vs {want}",
            got[i]
        );
    }
}

#[test]
fn hfauto_agrees_with_ciphertext_rotation_semantics() {
    // The HFAuto core applied to a ciphertext's components produces the
    // same polynomial as the evaluator's automorphism step.
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let keys = KeySet::generate(&ctx, &mut rng);
    let ct = encrypt(&ctx, &keys, &mut rng, &[1.0, 2.0, 3.0, 4.0]);
    let g = keys.galois_element(1);

    let reference = ct.c0().automorphism(g);
    let hf = HfAuto::new(ctx.n(), 128);
    for (j, &q) in ct.c0().basis().primes().iter().enumerate() {
        let got = hf.apply(ct.c0().residues(j), g, q);
        assert_eq!(got.as_slice(), reference.residues(j), "prime {j}");
    }
}

#[test]
fn operator_pool_usage_matches_analytical_decomposition_shape() {
    // Running the PMult datapath through the pool must exercise exactly
    // the operators the analytical Table-I row predicts (plus the NTT
    // domain crossings the hardware keeps resident).
    let n = 1 << 10;
    let q = poseidon::math::prime::ntt_prime(28, 2 * n as u64).unwrap();
    let mut pool = OperatorPool::new(n, 64, 3);
    let a = vec![3u64; n];
    let b = vec![5u64; n];
    let _ = pool.poly_mul(&a, &b, q);
    let u = pool.usage();
    let row = BasicOp::PMult.operator_counts(&OpParams::new(n, 1, 1));
    assert!(u.mm > 0 && row.mm > 0);
    assert!(u.ma == 0 && row.ma == 0);
    assert!(u.auto == 0 && row.auto == 0);
}

#[test]
fn simulator_speedup_shape_matches_paper_ordering() {
    // Per-op model times must order the way Table IV's complexity does:
    // HAdd fastest, then Rescale/PMult, with CMult/Rotation the slowest.
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let p = OpParams::new(1 << 13, 6, 1);
    let t = |op: BasicOp| sim.time_single(op, &p).seconds;
    // Streaming ops (HAdd/PMult) are far cheaper than keyswitch-bearing
    // ops; the keyswitch itself lower-bounds Rotation.
    assert!(t(BasicOp::HAdd) * 2.0 < t(BasicOp::CMult));
    assert!(t(BasicOp::PMult) * 2.0 < t(BasicOp::CMult));
    assert!(t(BasicOp::Keyswitch) <= t(BasicOp::Rotation));
    assert!(t(BasicOp::Rescale) < t(BasicOp::CMult));
}

#[test]
fn benchmarks_rank_like_the_paper() {
    // Table VI ordering: LR < PackedBoot < LSTM ~ ResNet (the two big
    // inference workloads are within 2x of each other).
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    let times: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|b| sim.run(&b.trace()).seconds)
        .collect();
    let (lr, lstm, resnet, boot) = (times[0], times[1], times[2], times[3]);
    assert!(lr < boot && boot < lstm && boot < resnet);
    assert!(lstm / resnet < 2.5 && resnet / lstm < 2.5);
}

#[test]
fn rotation_composes_with_cmult_across_levels() {
    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rng();
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(2, &mut rng);
    let eval = Evaluator::new(&ctx);
    let slots = ctx.params().slots();
    let vals: Vec<f64> = (0..slots).map(|i| ((i % 5) as f64) - 2.0).collect();
    let ct = encrypt(&ctx, &keys, &mut rng, &vals);

    // rot(ct, 2) ⊙ ct then check slot semantics.
    let rot = eval.rotate(&ct, 2, &keys);
    let prod = eval.rescale(&eval.mul(&rot, &ct, &keys));
    let got = decrypt(&ctx, &keys, &prod, slots);
    for i in 0..8 {
        let want = vals[(i + 2) % slots] * vals[i];
        assert!((got[i] - want).abs() < 0.02, "slot {i}");
    }
}

#[test]
fn recorded_session_simulates_on_the_accelerator_model() {
    // Record a real computation, then predict its accelerator time.
    use poseidon::core::recorder::RecordingEvaluator;
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rng();
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let rec = RecordingEvaluator::new(Evaluator::new(&ctx), 1);

    let a = encrypt(&ctx, &keys, &mut rng, &[1.0, 2.0, 3.0, 4.0]);
    let b = encrypt(&ctx, &keys, &mut rng, &[0.5, 0.5, 0.5, 0.5]);
    let s = rec.add(&a, &b);
    let p = rec.rescale(&rec.mul(&s, &b, &keys));
    let out = rec.rotate(&p, 1, &keys);

    // Functional result is correct...
    let got = decrypt(&ctx, &keys, &out, 4);
    for i in 0..4 {
        let want = ([1.5f64, 2.5, 3.5, 4.5][(i + 1) % 4]) * 0.5;
        assert!((got[i] - want).abs() < 0.02, "slot {i}");
    }
    // ...and the recorded trace runs on the model.
    let trace = rec.into_trace();
    assert_eq!(trace.entries().len(), 4);
    let report = Simulator::new(AcceleratorConfig::poseidon_u280()).run(&trace);
    assert!(report.seconds > 0.0);
    assert!(report.time_share_percent(BasicOp::Rotation) > 10.0);
}
