//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`Strategy`] with `prop_map`/`prop_filter`, [`any`], range
//! strategies, [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros — over a
//! deterministic per-test RNG.
//!
//! Differences from the real crate, by design: values are drawn uniformly
//! (no edge-case biasing) and failing cases are reported without input
//! shrinking. Each test's stream is seeded from the hash of its name, so
//! failures reproduce exactly on re-run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A failed property check (the `Err` side of a test-case body).
pub type TestCaseError = String;

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The value source driving one property test.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is derived from the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        Self {
            rng: StdRng::seed_from_u64(h.finish() ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retry; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen::<T>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        runner.rng().gen_range(self.clone())
    }
}

/// A fixed value as a (degenerate) strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$i.new_value(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};

    /// Strategy producing `len`-element vectors drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Fixed-length vector of values drawn from `element`.
    ///
    /// (The real crate also accepts length *ranges*; the workspace only
    /// uses fixed lengths, so that is all the shim supports.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (0..self.len)
                .map(|_| self.element.new_value(runner))
                .collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the enclosing property case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::Rng as _;

    #[test]
    fn ranges_and_filters_generate_in_bounds() {
        let mut runner = TestRunner::for_test("shim::bounds");
        let s = (2u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            let v = s.new_value(&mut runner);
            assert!((2..100).contains(&v) && v % 2 == 0);
        }
        let m = (0u32..10).prop_map(|v| v * 3);
        for _ in 0..200 {
            assert_eq!(m.new_value(&mut runner) % 3, 0);
        }
    }

    #[test]
    fn vec_strategy_has_fixed_len() {
        let mut runner = TestRunner::for_test("shim::vec");
        let s = crate::collection::vec(-4.0f64..4.0, 7);
        let v = s.new_value(&mut runner);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| (-4.0..4.0).contains(x)));
    }

    #[test]
    fn streams_are_reproducible_per_name() {
        let a = TestRunner::for_test("same").rng().gen::<u64>();
        let b = TestRunner::for_test("same").rng().gen::<u64>();
        let c = TestRunner::for_test("other").rng().gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..1000, y in any::<u64>()) {
            prop_assert!(x < 1000);
            prop_assert_eq!(x + (y % 7), (y % 7) + x);
            prop_assert_ne!(x + 1, x);
        }
    }
}
