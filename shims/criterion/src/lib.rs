//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], `sample_size`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! plain wall-clock harness: per sample, the measured closure runs in a
//! batch sized to take ≳5 ms, and the per-iteration median/min/mean across
//! samples is printed to stdout.
//!
//! No statistical outlier analysis, plots, or result persistence — numbers
//! print once and the caller records them (EXPERIMENTS.md does).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.sample_size,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one("", &id.into().label, sample_size, f);
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, f);
        self
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    match summarize(&b.samples) {
        Some((median, mean, min)) => println!(
            "{full:<44} median {:>12}  mean {:>12}  min {:>12}",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
        ),
        None => println!("{full:<44} (no measurement — Bencher::iter never called)"),
    }
}

fn summarize(samples: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    Some((median, mean, min))
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times a closure: batches iterations until a sample takes ≳5 ms, then
/// records `sample_size` timed samples of the mean per-iteration cost.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, retaining its output via [`black_box`] so the
    /// optimizer cannot elide the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: grow the batch until it costs ≥ 5 ms (or
        // a 64k-iteration cap for ultra-cheap routines).
        let mut batch: u64 = 1;
        let batch_target = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_target || batch >= 65_536 {
                break;
            }
            // Aim straight at the target with a 2× safety margin.
            let scale = (batch_target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale as u64 * 2)).clamp(batch + 1, 65_536);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// `iter` variant receiving per-sample setup output (subset: setup runs
    /// once per iteration, outside the timed region is NOT guaranteed).
    pub fn iter_with_setup<S, O, P: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: P,
        mut routine: R,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_selftest");
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("ntt", 4096).label, "ntt/4096");
        assert_eq!(BenchmarkId::from_parameter(3).label, "3");
    }
}
