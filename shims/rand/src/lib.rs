//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small API subset it actually uses as a local
//! path dependency under the same crate name: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], and [`thread_rng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for key-generation and test-vector
//! purposes, and explicitly **not** a cryptographically secure RNG. That
//! caveat already applied to the reproduction's sampling layer (see
//! `he-ckks::sampling`); a production deployment would swap in a CSPRNG.
//!
//! Seed streams differ from upstream `rand 0.8` (which uses ChaCha12 for
//! `StdRng`), so seeded outputs are reproducible within this workspace but
//! not bit-compatible with the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (`rand`'s `Standard`
/// distribution, collapsed into a trait).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform sampling below an exclusive bound, bias-free (rejection over the
/// widening-multiply zone, à la Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // 2^64 mod bound
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = v as u128 * bound as u128;
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Rejection sampling: accept draws below the largest multiple of
    // `bound` that fits, then reduce.
    let reject_from = u128::MAX - (u128::MAX % bound);
    loop {
        let v = u128::sample(rng);
        if v < reject_from || reject_from == 0 {
            return v % bound;
        }
    }
}

/// Ranges a value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below_u128(rng, self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng); // [0, 1)
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fills a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic stream).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-provided entropy (here: clock-derived).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let salt = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    nanos ^ salt.rotate_left(17) ^ (std::process::id() as u64) << 32
}

/// Concrete generator types.
pub mod rngs {
    use super::{entropy_seed, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut split = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [split(), split(), split(), split()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A per-call generator seeded from clock entropy — the stand-in for
    /// `rand`'s thread-local handle.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            Self(StdRng::seed_from_u64(entropy_seed()))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh entropy-seeded generator (the `rand::thread_rng` entry
/// point; ours is per-call rather than thread-local, which is fine for the
/// non-reproducible call sites that use it).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Draws one [`Standard`] value from a fresh entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

/// Re-exports mirroring `rand`'s prelude.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(rng.gen_range(-1i64..=1) + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }

    #[test]
    fn generic_rng_bound_accepts_unsized() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(take(&mut rng) < 100);
    }
}
